"""The unified evaluation engine (repro.engine).

The load-bearing guarantees under test:

* every optimizer driver — generational, steady-state, and all three
  baselines — resolves a repeated phenome from the evaluation cache
  instead of retraining it;
* the engine is the only place the exception→MAXINT failure policy
  lives (an AST guard bans direct ``Problem.evaluate`` calls and
  inline failure-fitness construction everywhere else in ``src/``);
* a killed steady-state campaign resumes without retraining finished
  evaluations, and its journal records every completed evaluation.
"""

import ast
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    EvaluationEngine,
    InlineBackend,
    as_backend,
    call_problem,
    failure_fitness,
)
from repro.evo.asynchronous import (
    steady_state_as_generations,
    steady_state_nsga2,
)
from repro.evo.individual import MAXINT, Individual, RobustIndividual
from repro.evo.problem import Problem
from repro.exceptions import EvaluationError
from repro.hpo.baselines import (
    grid_search,
    random_search,
    weighted_sum_ea,
)
from repro.hpo.driver import NSGA2Settings, run_deepmd_nsga2
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.representation import DeepMDRepresentation
from repro.store import CachedProblem, EvaluationCache
from repro.store.journal import read_journal

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class IdentityDecoder:
    def decode(self, genome):
        return genome


class CountingProblem(Problem):
    n_objectives = 2

    def __init__(self):
        self.calls = 0

    def evaluate_with_metadata(self, phenome, uuid=None):
        self.calls += 1
        values = (
            list(phenome.values())
            if isinstance(phenome, dict)
            else phenome
        )
        x = float(np.sum(np.asarray(values, dtype=np.float64)))
        return np.array([x, x * 2.0]), {"calls": self.calls}


class BoomProblem(Problem):
    n_objectives = 2

    def evaluate_with_metadata(self, phenome, uuid=None):
        raise EvaluationError("deterministic boom")


def _ind(genome, problem, cls=Individual):
    ind = cls(
        np.asarray(genome, dtype=np.float64),
        decoder=IdentityDecoder(),
        problem=problem,
    )
    ind.n_objectives = problem.n_objectives
    return ind


# ----------------------------------------------------------------------
# engine semantics
# ----------------------------------------------------------------------
class TestEngineCore:
    def test_batch_dedup_one_call_per_genome(self):
        problem = CountingProblem()
        pop = [_ind([1.0, 2.0], problem) for _ in range(3)]
        pop.append(_ind([3.0, 4.0], problem))
        engine = EvaluationEngine(dedup=True)
        out = engine.evaluate(pop)
        assert out == pop
        assert problem.calls == 2
        assert engine.stats.submitted == 4
        assert engine.stats.fresh == 2
        assert engine.stats.dedup_hits == 2
        dups = [i for i in pop if i.metadata.get("dedup_of")]
        assert len(dups) == 2
        rep_uuid = pop[0].uuid
        assert all(d.metadata["dedup_of"] == rep_uuid for d in dups)
        assert all(
            np.array_equal(i.fitness, pop[0].fitness) for i in pop[:3]
        )

    def test_batch_scope_forgets_between_batches(self):
        problem = CountingProblem()
        engine = EvaluationEngine(dedup=True, dedup_scope="batch")
        engine.evaluate([_ind([1.0, 2.0], problem)])
        engine.evaluate([_ind([1.0, 2.0], problem)])
        assert problem.calls == 2
        assert engine.stats.dedup_hits == 0

    def test_run_scope_remembers_across_batches(self):
        problem = CountingProblem()
        engine = EvaluationEngine(dedup=True, dedup_scope="run")
        engine.evaluate([_ind([1.0, 2.0], problem)])
        engine.evaluate([_ind([1.0, 2.0], problem)])
        assert problem.calls == 1
        assert engine.stats.dedup_hits == 1

    def test_invalid_dedup_scope_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(dedup_scope="generation")

    def test_failure_policy_plain_individual(self):
        ind = _ind([1.0], BoomProblem())
        engine = EvaluationEngine()
        engine.evaluate([ind])
        assert np.all(ind.fitness == MAXINT)
        assert ind.metadata["failed"] is True
        assert "boom" in ind.metadata["failure_cause"]
        assert engine.stats.failures == 1
        assert not ind.is_viable

    def test_failure_policy_robust_individual_same_outcome(self):
        ind = _ind([1.0], BoomProblem(), cls=RobustIndividual)
        engine = EvaluationEngine()
        engine.evaluate([ind])
        assert np.all(ind.fitness == MAXINT)
        assert engine.stats.failures == 1

    def test_streaming_submit_wait_any(self):
        problem = CountingProblem()
        engine = EvaluationEngine(dedup=True, dedup_scope="run")
        engine.submit(_ind([1.0, 1.0], problem))
        engine.submit(_ind([1.0, 1.0], problem))
        assert engine.has_pending()
        done = engine.wait_any()
        assert len(done) == 2
        assert not engine.has_pending()
        assert engine.wait_any() == []
        assert engine.stats.fresh == 1
        assert engine.stats.dedup_hits == 1

    def test_timeout_applies_failure_policy(self):
        class NeverDone:
            def done(self):
                return False

            def cancel(self):
                self.cancelled = True

        class StuckBackend:
            is_execution_backend = True

            def submit(self, individual):
                return NeverDone()

            def on_cache_hit(self, individual):
                pass

        ind = _ind([1.0], CountingProblem())
        engine = EvaluationEngine(client=StuckBackend(), timeout=0.01)
        engine.submit(ind)
        done = engine.wait_any(timeout=5.0)
        assert done == [ind]
        assert np.all(ind.fitness == MAXINT)
        assert "TrainingTimeoutError" in ind.metadata["failure_cause"]
        assert engine.stats.timeouts == 1

    def test_stats_delta(self):
        problem = CountingProblem()
        engine = EvaluationEngine()
        engine.evaluate([_ind([1.0, 2.0], problem)])
        before = engine.stats.copy()
        engine.evaluate([_ind([3.0, 4.0], problem)])
        used = engine.stats.delta(before)
        assert used.submitted == 1
        assert engine.stats.submitted == 2

    def test_as_backend_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_backend(object())
        assert isinstance(as_backend(None), InlineBackend)

    def test_call_problem_plain_evaluate_problem(self):
        class Plain:
            def evaluate(self, phenome):
                return [1.0, 2.0]

        fitness, meta = call_problem(Plain(), {"x": 1})
        assert np.array_equal(fitness, [1.0, 2.0])
        assert meta == {}

    def test_failure_fitness_shape_and_value(self):
        f = failure_fitness(3)
        assert f.shape == (3,)
        assert np.all(f == MAXINT)


# ----------------------------------------------------------------------
# the cache-probe fast path
# ----------------------------------------------------------------------
class TestEngineCacheProbe:
    def _cached_problem(self, tmp_path):
        return CachedProblem(
            CountingProblem(), EvaluationCache(tmp_path / "cache")
        )

    def test_repeated_phenome_is_cache_hit_not_fresh(self, tmp_path):
        problem = self._cached_problem(tmp_path)
        engine = EvaluationEngine()
        engine.evaluate([_ind([1.0, 2.0], problem, RobustIndividual)])
        engine.evaluate([_ind([1.0, 2.0], problem, RobustIndividual)])
        assert problem.problem.calls == 1
        assert engine.stats.fresh == 1
        assert engine.stats.cache_hits == 1

    def test_cache_hit_never_reaches_backend(self, tmp_path):
        problem = self._cached_problem(tmp_path)
        engine = EvaluationEngine()
        engine.evaluate([_ind([1.0, 2.0], problem, RobustIndividual)])

        submitted = []

        class SpyBackend(InlineBackend):
            def submit(self, individual):
                submitted.append(individual)
                return super().submit(individual)

            def on_cache_hit(self, individual):
                submitted.append("cache-hit-notification")

        warm = EvaluationEngine(client=SpyBackend())
        warm.evaluate([_ind([1.0, 2.0], problem, RobustIndividual)])
        assert submitted == ["cache-hit-notification"]
        assert warm.stats.cache_hits == 1


# ----------------------------------------------------------------------
# every driver resolves repeats through the cache (the acceptance bar)
# ----------------------------------------------------------------------
class TestCacheHitInEveryDriver:
    def _factory(self, tmp_path):
        # cache_failures=True: a deterministic failure replays from the
        # cache instead of re-executing, so replay counts stay exact
        cache = EvaluationCache(tmp_path / "cache", cache_failures=True)
        return cache, (
            lambda: CachedProblem(SurrogateDeepMDProblem(seed=3), cache)
        )

    def test_steady_state(self, tmp_path):
        cache, make = self._factory(tmp_path)
        rep = DeepMDRepresentation
        kwargs = dict(
            init_ranges=rep.init_ranges,
            initial_std=rep.mutation_std,
            pop_size=5,
            max_evaluations=15,
            hard_bounds=rep.bounds,
            decoder=rep.decoder(),
        )
        first = steady_state_nsga2(problem=make(), rng=11, **kwargs)
        assert first.evaluations == 15
        assert first.cache_hits == 0
        replay = steady_state_nsga2(problem=make(), rng=11, **kwargs)
        # deterministic inline replay: every candidate is served from
        # the cache, zero retraining
        assert replay.evaluations == 0
        assert replay.cache_hits == replay.completions == 15
        assert sorted(
            tuple(i.fitness) for i in first.evaluated
        ) == sorted(tuple(i.fitness) for i in replay.evaluated)

    def test_generational(self, tmp_path):
        cache, make = self._factory(tmp_path)
        settings = NSGA2Settings(pop_size=5, generations=2)
        run_deepmd_nsga2(problem=make(), settings=settings, rng=11)
        inserts = cache.stats()["inserts"]
        assert inserts > 0
        run_deepmd_nsga2(problem=make(), settings=settings, rng=11)
        stats = cache.stats()
        # bit-identical replay: every insert comes back as a hit and
        # nothing new is trained
        assert stats["hits"] == inserts
        assert stats["inserts"] == inserts

    def test_grid_search(self, tmp_path):
        cache, make = self._factory(tmp_path)
        first = grid_search(make(), points_per_gene=2, budget=10, rng=5)
        # distinct lattice nodes may decode to the same phenome, so
        # some candidates are cache hits even within the first sweep
        assert first.fresh + first.cache_hits == 10
        assert first.fresh == cache.stats()["inserts"]
        again = grid_search(make(), points_per_gene=2, budget=10, rng=5)
        assert again.fresh == 0
        assert again.cache_hits == again.evaluations == 10

    def test_random_search(self, tmp_path):
        cache, make = self._factory(tmp_path)
        first = random_search(make(), budget=8, rng=5)
        assert first.fresh == 8
        again = random_search(make(), budget=8, rng=5)
        assert again.fresh == 0
        assert again.cache_hits == 8

    def test_weighted_sum_ea(self, tmp_path):
        cache, make = self._factory(tmp_path)
        kwargs = dict(pop_size=5, generations=2, rng=5)
        first = weighted_sum_ea(make(), **kwargs)
        assert first.evaluations == 15
        assert first.fresh == 15
        # the scalarized problem caches through its inner problem; the
        # cache_hit marker propagates out through the scalarization, so
        # a rerun retrains nothing
        again = weighted_sum_ea(make(), **kwargs)
        assert again.fresh == 0
        assert again.cache_hits == 15


# ----------------------------------------------------------------------
# steady-state accounting and pseudo-generations
# ----------------------------------------------------------------------
class TestSteadyStateAccounting:
    def test_record_counts_and_chunks(self):
        rep = DeepMDRepresentation
        record = steady_state_nsga2(
            problem=SurrogateDeepMDProblem(seed=0),
            init_ranges=rep.init_ranges,
            initial_std=rep.mutation_std,
            pop_size=4,
            max_evaluations=12,
            hard_bounds=rep.bounds,
            decoder=rep.decoder(),
            rng=0,
        )
        assert record.completions == 12
        assert record.evaluations == 12  # no cache, no repeats
        assert len(record.evaluated) == 12
        assert len(record.population) == 4
        gens = steady_state_as_generations(
            record, pop_size=4, initial_std=rep.mutation_std
        )
        assert [g.generation for g in gens] == [0, 1, 2]
        assert all(len(g.evaluated) == 4 for g in gens)
        assert [tuple(i.genome) for i in gens[-1].population] == [
            tuple(i.genome) for i in record.population
        ]
        # std anneals by the factor per window
        assert np.allclose(gens[1].std, gens[0].std * 0.85)

    def test_budget_must_cover_initial_population(self):
        rep = DeepMDRepresentation
        with pytest.raises(ValueError):
            steady_state_nsga2(
                problem=SurrogateDeepMDProblem(seed=0),
                init_ranges=rep.init_ranges,
                initial_std=rep.mutation_std,
                pop_size=10,
                max_evaluations=5,
            )


# ----------------------------------------------------------------------
# the AST guard: one failure policy, one evaluation entry point
# ----------------------------------------------------------------------
#: modules allowed to call Problem.evaluate* / build MAXINT fitness —
#: the engine itself, the robust individual's exception fallback, and
#: the Problem base class's default batch fallback loop
_GUARD_WHITELIST = (
    "repro/engine/",
    "repro/evo/individual.py",
    "repro/evo/problem.py",
)

#: receiver names that denote the engine itself, not a problem
_ENGINE_RECEIVERS = {"eng", "engine"}

#: sanctioned per-evaluation helpers that must not be looped over —
#: batch work goes through `engine.evaluate_batch` / `call_problem_batch`
_LOOPED_HELPERS = {"call_problem", "evaluate_individual"}


def _receiver_name(node):
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _loop_bodies(tree):
    """Yield every AST node nested inside a loop or comprehension."""
    loop_types = (
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )
    for node in ast.walk(tree):
        if isinstance(node, loop_types):
            for child in ast.walk(node):
                if child is not node:
                    yield child


def _guard_violations(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("evaluate", "evaluate_with_metadata"):
                receiver = _receiver_name(func.value)
                if receiver not in _ENGINE_RECEIVERS:
                    violations.append(
                        f"{path}:{node.lineno}: .{func.attr}() call"
                    )
            if func.attr == "full" and any(
                isinstance(a, ast.Name) and a.id == "MAXINT"
                for a in node.args
            ):
                violations.append(
                    f"{path}:{node.lineno}: inline MAXINT fitness"
                )
    # per-individual evaluation loops: ban looping the scalar helpers
    # outside the engine and the Problem base fallback
    looped = set()
    for node in _loop_bodies(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _LOOPED_HELPERS
            and id(node) not in looped
        ):
            looped.add(id(node))
            violations.append(
                f"{path}:{node.lineno}: {node.func.id}() in a loop "
                "(use the batch path)"
            )
    return violations


class TestFailurePolicyGuard:
    def test_no_direct_evaluation_outside_engine(self):
        src_root = Path(SRC)
        violations = []
        for path in sorted(src_root.rglob("*.py")):
            rel = path.relative_to(src_root).as_posix()
            if any(rel.startswith(w) or rel == w.rstrip("/") for w in _GUARD_WHITELIST):
                continue
            violations.extend(_guard_violations(path))
        assert not violations, (
            "Problem evaluation / failure fitness outside repro.engine "
            "(route through EvaluationEngine, call_problem, or "
            "failure_fitness):\n" + "\n".join(violations)
        )

    def test_guard_actually_detects_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "def f(problem, phenome, MAXINT):\n"
            "    fit = problem.evaluate(phenome)\n"
            "    return np.full(2, MAXINT)\n"
        )
        found = _guard_violations(bad)
        assert len(found) == 2

    def test_loop_guard_detects_scalar_helper_in_loop(self, tmp_path):
        bad = tmp_path / "bad_loop.py"
        bad.write_text(
            "def f(problems, phenomes):\n"
            "    out = []\n"
            "    for problem, phenome in zip(problems, phenomes):\n"
            "        out.append(call_problem(problem, phenome))\n"
            "    comp = [evaluate_individual(i) for i in phenomes]\n"
            "    return out, comp\n"
        )
        found = _guard_violations(bad)
        loops = [v for v in found if "in a loop" in v]
        assert len(loops) == 2
        # the same helpers outside a loop are fine
        good = tmp_path / "good_call.py"
        good.write_text(
            "def g(problem, phenome):\n"
            "    return call_problem(problem, phenome)\n"
        )
        assert not [
            v for v in _guard_violations(good) if "in a loop" in v
        ]


# ----------------------------------------------------------------------
# killed steady-state campaign: cache-driven resume
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSteadyStateKillResume:
    def _run_cli(self, args, cwd):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.hpo.cli", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_killed_steady_state_resumes_from_cache(self, tmp_path):
        common = [
            "run",
            "--mode", "steady-state",
            "--runs", "2",
            "--pop-size", "6",
            "--generations", "2",
            "--seed", "7",
        ]
        base = self._run_cli(common + ["--save", "base"], cwd=tmp_path)
        assert base.returncode == 0, base.stderr
        killed = self._run_cli(
            common + ["--save", "killed", "--kill-after-evals", "10"],
            cwd=tmp_path,
        )
        assert killed.returncode == 137, killed.stderr
        # most finished evaluations persisted before the kill (the
        # kill-triggering one and uncached failures may be missing)
        n_cached = len(
            list((tmp_path / "killed" / "cache").glob("??/*.json"))
        )
        assert n_cached >= 5
        resumed = self._run_cli(["resume", "killed"], cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        # every finished evaluation came back as a cache hit, not a
        # retraining
        assert f"'hits': {n_cached}" in resumed.stdout

        from repro.io import load_campaign

        a = load_campaign(tmp_path / "base")
        b = load_campaign(tmp_path / "killed")
        # inline steady-state replay is deterministic, so the resumed
        # campaign matches the never-killed one; the journal/cache
        # guarantee itself is order-independent (set equality)
        front = lambda r: sorted(  # noqa: E731
            tuple(i.fitness) for i in r.aggregate_pareto_front()
        )
        assert front(a) == front(b)

        # the journal holds every completed evaluation of the campaign
        state = read_journal(tmp_path / "killed" / "journal.jsonl")
        journaled = {
            tuple(doc["genome"])
            for rs in state.runs.values()
            for doc in rs.evaluations
        }
        evaluated = {
            tuple(i.genome)
            for run in b.runs
            for rec in run
            for i in rec.evaluated
        }
        assert evaluated == journaled

"""Second round of property-based tests: the vectorized neighbor list
against a brute-force reference, autodiff algebraic identities, and
archive/selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import autodiff as ad
from repro.autodiff.tensor import Tensor, grad
from repro.evo.individual import Individual
from repro.evo.nsga2 import nsga2_select
from repro.evo.problem import ConstantProblem
from repro.md.cell import PeriodicCell
from repro.md.neighbors import NeighborList, neighbor_pairs
from repro.mo.pareto import ParetoArchive


def _brute_force_neighbors(positions, cell, cutoff):
    """Reference implementation: O(N^2 * images) python loops."""
    n = len(positions)
    shifts = cell.image_shifts(cutoff)
    out = [[] for _ in range(n)]
    for i in range(n):
        for j in range(n):
            for s in shifts:
                if i == j and np.all(s == 0.0):
                    continue
                d = positions[j] + s - positions[i]
                if np.dot(d, d) <= cutoff * cutoff:
                    out[i].append((j, tuple(np.round(d, 9))))
    return out


class TestNeighborListAgainstBruteForce:
    @given(
        st.integers(2, 8),
        st.floats(4.0, 12.0),
        st.floats(0.3, 0.95),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_neighbor_sets(self, n, box, cut_frac, seed):
        # cutoff as a generic fraction of the box: self-image distances
        # are exact multiples of the box length, and a cutoff exactly on
        # such a boundary is ill-posed in floating point (the brute
        # reference and any implementation may legitimately disagree)
        cutoff = box * cut_frac * 1.4
        if abs(cutoff / box - round(cutoff / box)) < 1e-6:
            cutoff *= 1.0001
        rng = np.random.default_rng(seed)
        cell = PeriodicCell(box)
        positions = rng.uniform(0, box, size=(n, 3))
        nl = NeighborList.build(positions, cell, cutoff)
        reference = _brute_force_neighbors(positions, cell, cutoff)
        for i in range(n):
            got = set()
            for k in range(nl.max_neighbors):
                if nl.mask[i, k] > 0:
                    got.add(
                        (
                            int(nl.indices[i, k]),
                            tuple(np.round(nl.displacements[i, k], 9)),
                        )
                    )
            assert got == set(reference[i])

    @given(
        st.integers(2, 8),
        st.floats(4.0, 12.0),
        st.floats(1.5, 7.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_pairs_consistent_with_list(self, n, box, cutoff, seed):
        # the table is built from the canonical pair set, so the 2x
        # relation holds for every cutoff, boundaries included
        rng = np.random.default_rng(seed)
        cell = PeriodicCell(box)
        positions = rng.uniform(0, box, size=(n, 3))
        nl = NeighborList.build(positions, cell, cutoff)
        i, j, d = neighbor_pairs(positions, cell, cutoff)
        # total directed neighbor slots == 2x number of unordered pairs
        assert int(nl.mask.sum()) == 2 * len(i)

    @given(st.integers(2, 6), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_distance_sorted_within_atom(self, n, seed):
        rng = np.random.default_rng(seed)
        cell = PeriodicCell(10.0)
        positions = rng.uniform(0, 10, size=(n, 3))
        nl = NeighborList.build(positions, cell, cutoff=6.0)
        r = np.linalg.norm(nl.displacements, axis=-1)
        for a in range(n):
            valid = nl.mask[a].astype(bool)
            ra = r[a][valid]
            assert np.all(np.diff(ra) >= -1e-12)


_vec = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 8),
    elements=st.floats(-3.0, 3.0, allow_nan=False),
)


class TestAutodiffAlgebra:
    @given(_vec)
    @settings(max_examples=60, deadline=None)
    def test_gradient_of_sum_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @given(_vec, st.floats(-2.0, 2.0), st.floats(-2.0, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_grad_linearity(self, x, a, b):
        """grad(a f + b g) == a grad(f) + b grad(g)."""
        t = Tensor(x, requires_grad=True)
        f = (t * t).sum()
        g = ad.tanh(t).sum()
        combined = f * a + g * b
        (gc,) = grad(combined, [t])
        (gf,) = grad(f, [t])
        (gg,) = grad(g, [t])
        assert np.allclose(gc.data, a * gf.data + b * gg.data, atol=1e-10)

    @given(_vec)
    @settings(max_examples=60, deadline=None)
    def test_chain_rule_identity(self, x):
        """d/dx tanh(x^2) == (1 - tanh(x^2)^2) * 2x."""
        t = Tensor(x, requires_grad=True)
        y = ad.tanh(t * t).sum()
        (g,) = grad(y, [t])
        expected = (1.0 - np.tanh(x * x) ** 2) * 2.0 * x
        assert np.allclose(g.data, expected, atol=1e-10)

    @given(_vec)
    @settings(max_examples=40, deadline=None)
    def test_product_rule(self, x):
        t = Tensor(x, requires_grad=True)
        u = ad.sigmoid(t)
        v = t * 2.0
        (g,) = grad((u * v).sum(), [t])
        s = 1.0 / (1.0 + np.exp(-x))
        expected = s * (1 - s) * 2.0 * x + s * 2.0
        assert np.allclose(g.data, expected, atol=1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-2.0, 2.0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reshape_transpose_roundtrip_gradient(self, m):
        t = Tensor(m, requires_grad=True)
        y = (t.T.reshape(m.shape) ** 2.0).sum()
        y.backward()
        # roundtrip is a permutation; gradient of sum of squares of a
        # permutation of t equals 2 * permuted values mapped back = 2t
        assert np.allclose(
            np.sort(t.grad.ravel()), np.sort(2.0 * m.ravel())
        )


class TestSelectionInvariants:
    def _pop(self, F):
        out = []
        for f in F:
            ind = Individual([0.0], problem=ConstantProblem(list(f)))
            out.append(ind.evaluate())
        return out

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 25), st.just(2)),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_nsga2_select_keeps_all_of_better_fronts(self, F, k):
        size = min(k, len(F))
        pop = self._pop(F)
        chosen = nsga2_select(pop, size)
        assert len(chosen) == size
        chosen_ranks = sorted(ind.rank for ind in chosen)
        all_ranks = sorted(ind.rank for ind in pop)
        # the selected ranks are the best `size` ranks available
        assert chosen_ranks == all_ranks[:size]

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 30), st.just(2)),
            elements=st.floats(0.0, 5.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_archive_equals_batch_front(self, F):
        """Incremental archiving reaches the same non-dominated set as
        a batch computation (up to exact duplicates, which the archive
        stores once)."""
        from repro.mo.dominance import non_dominated_mask

        archive = ParetoArchive()
        archive.add_all(self._pop(F))
        batch = {tuple(f) for f in F[non_dominated_mask(F)]}
        incremental = {
            tuple(np.atleast_1d(m.fitness)) for m in archive.members
        }
        assert incremental == batch

"""Tests for the extension modules: potential deployment, asynchronous
steady-state NSGA-II, the NAS representation, and campaign storage."""

import numpy as np
import pytest

from repro.deepmd.calculator import (
    DeepPotCalculator,
    force_rmse_along_trajectory,
)
from repro.deepmd.descriptor import DescriptorConfig
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.training import Trainer, TrainingConfig
from repro.distributed import LocalCluster, RandomFaults
from repro.evo.asynchronous import steady_state_nsga2
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.nas import (
    NAS_GENE_NAMES,
    NASRepresentation,
    NASSurrogateProblem,
    run_nas_nsga2,
)
from repro.hpo.representation import DeepMDRepresentation
from repro.io import (
    export_frontier_csv,
    export_level_plot_csv,
    export_parallel_coordinates_csv,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def trained_model(small_dataset):
    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=4.0, rcut_smth=1.5),
        embedding_widths=(4, 8),
        axis_neurons=3,
        fitting_widths=(8,),
    )
    model = DeepPotModel(config, rng=0)
    Trainer(
        model,
        small_dataset,
        TrainingConfig(numb_steps=40, batch_size=2, disp_freq=40),
        rng=1,
    ).train()
    return model


class TestDeepPotCalculator:
    def test_potential_interface(self, trained_model, small_dataset):
        calc = DeepPotCalculator(trained_model)
        frame = small_dataset.validation[0]
        energy, forces = calc.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
        assert np.isfinite(energy)
        assert forces.shape == frame.forces.shape

    def test_forces_sum_to_zero(self, trained_model, small_dataset):
        calc = DeepPotCalculator(trained_model)
        frame = small_dataset.validation[0]
        _, forces = calc.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-8)

    def test_padding_width_invariance(self, trained_model, small_dataset):
        """A trained model must predict identically regardless of the
        neighbor-table padding (the descriptor_norm design)."""
        frame = small_dataset.validation[0]
        c1 = DeepPotCalculator(trained_model)
        c2 = DeepPotCalculator(trained_model, max_neighbors=60)
        e1, f1 = c1.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
        e2, f2 = c2.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
        assert np.isclose(e1, e2)
        assert np.allclose(f1, f2)

    def test_runs_md(self, trained_model, small_dataset):
        """The learned potential can drive the same integrator that
        generated the training data — the deployment loop closes."""
        from repro.md.integrator import (
            LangevinIntegrator,
            maxwell_boltzmann_velocities,
        )
        from repro.md.system import molten_salt_system

        system = molten_salt_system(4, 2, rng=5)
        calc = DeepPotCalculator(trained_model)
        integrator = LangevinIntegrator(calc, 498.0, dt=0.5, rng=6)
        v = maxwell_boltzmann_velocities(system.masses, 498.0, rng=7)
        pos, vel = integrator.run(system, v, 10)
        assert np.isfinite(pos).all()
        assert np.isfinite(vel).all()

    def test_trajectory_rmse(self, trained_model, small_dataset):
        calc = DeepPotCalculator(trained_model)
        rmse = force_rmse_along_trajectory(
            calc, small_dataset.validation[:4]
        )
        assert rmse.shape == (4,)
        assert np.all(rmse > 0.0)
        assert np.all(np.isfinite(rmse))

    def test_pairwise_interface_rejected(self, trained_model):
        calc = DeepPotCalculator(trained_model)
        with pytest.raises(NotImplementedError):
            calc.pair_energy_and_scalar_force(
                np.array([1.0]), np.array([0]), np.array([0])
            )


class TestSteadyStateNSGA2:
    def _run(self, **over):
        kwargs = dict(
            problem=SurrogateDeepMDProblem(seed=0),
            init_ranges=DeepMDRepresentation.init_ranges,
            initial_std=DeepMDRepresentation.mutation_std,
            pop_size=16,
            max_evaluations=64,
            hard_bounds=DeepMDRepresentation.bounds,
            decoder=DeepMDRepresentation.decoder(),
            rng=0,
        )
        kwargs.update(over)
        with LocalCluster(n_workers=4) as cluster:
            return steady_state_nsga2(client=cluster.client(), **kwargs)

    def test_budget_respected(self):
        record = self._run()
        assert record.evaluations == 64
        assert len(record.evaluated) == 64

    def test_population_size_maintained(self):
        record = self._run()
        assert len(record.population) == 16

    def test_all_evaluated(self):
        record = self._run()
        assert all(ind.is_evaluated for ind in record.evaluated)

    def test_improves_over_initial(self):
        record = self._run(max_evaluations=200)
        initial = [
            i.fitness[1]
            for i in record.evaluated[:16]
            if i.is_viable
        ]
        final = [
            i.fitness[1] for i in record.population if i.is_viable
        ]
        assert np.median(final) < np.median(initial)

    def test_budget_below_population_rejected(self):
        with pytest.raises(ValueError):
            self._run(max_evaluations=4)

    def test_survives_worker_faults(self):
        policy = RandomFaults(rate=0.05, max_failures=2, rng=3)
        with LocalCluster(
            n_workers=4, fault_policy=policy, max_retries=4
        ) as cluster:
            record = steady_state_nsga2(
                problem=SurrogateDeepMDProblem(seed=0),
                init_ranges=DeepMDRepresentation.init_ranges,
                initial_std=DeepMDRepresentation.mutation_std,
                pop_size=12,
                max_evaluations=48,
                client=cluster.client(),
                hard_bounds=DeepMDRepresentation.bounds,
                decoder=DeepMDRepresentation.decoder(),
                rng=0,
            )
        assert record.evaluations == 48


class TestNASRepresentation:
    def test_eleven_genes(self):
        assert len(NAS_GENE_NAMES) == 11
        assert NAS_GENE_NAMES[:7] == DeepMDRepresentation.gene_names

    def test_decoder_integer_architecture_genes(self):
        decoder = NASRepresentation.decoder()
        genome = np.array(
            [1e-3, 1e-5, 8.0, 3.0, 2.2, 4.9, 0.3, 2.7, 16.9, 1.1, 32.5]
        )
        phenome = decoder.decode(genome)
        assert phenome["embedding_depth"] == 2
        assert phenome["embedding_width"] == 16
        assert phenome["fitting_depth"] == 1
        assert phenome["fitting_width"] == 32

    def test_decoder_clips_boundary_values(self):
        decoder = NASRepresentation.decoder()
        genome = np.zeros(11)
        genome[2], genome[3] = 8.0, 3.0  # valid radii
        genome[7] = 4.0  # embedding_depth at the top bound
        genome[8] = 33.0
        genome[9] = 0.5
        genome[10] = 8.0
        phenome = decoder.decode(genome)
        assert phenome["embedding_depth"] == 3
        assert phenome["embedding_width"] == 32
        assert phenome["fitting_depth"] == 1

    def test_architecture_shapes(self):
        phenome = {
            "embedding_depth": 3,
            "embedding_width": 8,
            "fitting_depth": 2,
            "fitting_width": 24,
        }
        arch = NASRepresentation.architecture_of(phenome)
        assert arch["embedding_widths"] == (8, 16, 32)
        assert arch["fitting_widths"] == (24, 24)

    def test_wrong_length_rejected(self):
        from repro.exceptions import DecodeError

        with pytest.raises(DecodeError):
            NASRepresentation.decoder().decode(np.zeros(7))


class TestNASSurrogate:
    def _phenome(self, **over):
        base = {
            "start_lr": 4e-3,
            "stop_lr": 1e-4,
            "rcut": 11.0,
            "rcut_smth": 2.2,
            "scale_by_worker": "none",
            "desc_activ_func": "tanh",
            "fitting_activ_func": "tanh",
            "embedding_depth": 2,
            "embedding_width": 12,
            "fitting_depth": 2,
            "fitting_width": 24,
        }
        base.update(over)
        return base

    def test_tiny_networks_underfit(self):
        prob = NASSurrogateProblem(seed=0)
        _, f_tiny = prob.mean_objectives(
            self._phenome(
                embedding_depth=1, embedding_width=4,
                fitting_depth=1, fitting_width=8,
            )
        )
        _, f_ok = prob.mean_objectives(self._phenome())
        assert f_tiny > f_ok

    def test_capacity_diminishing_returns(self):
        prob = NASSurrogateProblem(seed=0)
        _, f_mid = prob.mean_objectives(self._phenome())
        _, f_huge = prob.mean_objectives(
            self._phenome(
                embedding_depth=3, embedding_width=32,
                fitting_depth=3, fitting_width=64,
            )
        )
        # huge nets are not dramatically better (may be slightly worse)
        assert abs(f_huge - f_mid) < 0.01

    def test_runtime_grows_with_capacity(self):
        prob = NASSurrogateProblem(seed=0)
        _, meta_small = prob.evaluate_with_metadata(
            self._phenome(embedding_width=4, fitting_width=8)
        )
        _, meta_big = prob.evaluate_with_metadata(
            self._phenome(
                embedding_depth=3, embedding_width=32,
                fitting_depth=3, fitting_width=64,
            )
        )
        assert (
            meta_big["runtime_minutes"] > meta_small["runtime_minutes"]
        )

    def test_nas_driver_runs(self):
        records = run_nas_nsga2(pop_size=20, generations=2, rng=0)
        assert len(records) == 3
        viable = [i for i in records[-1].population if i.is_viable]
        assert viable
        # phenomes carry the architecture genes
        ph = viable[0].metadata["phenome"]
        assert "embedding_depth" in ph


class TestCampaignStore:
    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed),
            CampaignConfig(
                n_runs=2, pop_size=12, generations=2, base_seed=7
            ),
        ).run()

    def test_roundtrip_structure(self, campaign, tmp_path):
        save_campaign(campaign, tmp_path / "camp")
        loaded = load_campaign(tmp_path / "camp")
        assert len(loaded.runs) == 2
        assert loaded.n_trainings == campaign.n_trainings
        assert loaded.config.pop_size == 12

    def test_roundtrip_fitness_and_metadata(self, campaign, tmp_path):
        save_campaign(campaign, tmp_path / "camp")
        loaded = load_campaign(tmp_path / "camp")
        orig = campaign.last_generation_individuals()
        back = loaded.last_generation_individuals()
        f1 = np.sort(np.array([i.fitness for i in orig]), axis=0)
        f2 = np.sort(np.array([i.fitness for i in back]), axis=0)
        assert np.allclose(f1, f2)
        assert back[0].metadata.get("phenome") is not None
        assert back[0].uuid == orig[0].uuid

    def test_loaded_campaign_supports_analysis(self, campaign, tmp_path):
        from repro.analysis import frontier_table, parallel_coordinates

        save_campaign(campaign, tmp_path / "camp")
        loaded = load_campaign(tmp_path / "camp")
        assert len(frontier_table(loaded)) >= 1
        assert len(parallel_coordinates(loaded)) > 0

    def test_csv_exports(self, campaign, tmp_path):
        export_level_plot_csv(campaign, tmp_path / "fig1.csv")
        export_frontier_csv(campaign, tmp_path / "fig2.csv")
        export_parallel_coordinates_csv(campaign, tmp_path / "fig3.csv")
        fig1 = (tmp_path / "fig1.csv").read_text().splitlines()
        assert fig1[0] == "generation,energy_loss,force_loss"
        assert len(fig1) > 10
        fig3 = (tmp_path / "fig3.csv").read_text().splitlines()
        assert "rcut" in fig3[0]

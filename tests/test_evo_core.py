"""Tests for individuals, decoders, problems, and pipeline operators."""

import numpy as np
import pytest

from repro.evo.decoder import (
    FloorModDecoder,
    IdentityDecoder,
    MixedVectorDecoder,
    floor_mod_choice,
)
from repro.evo.individual import MAXINT, Individual, RobustIndividual
from repro.evo.ops import (
    clone,
    eval_pool,
    evaluate,
    mutate_gaussian,
    pipe,
    pool,
    random_selection,
    tournament_selection,
    truncation_selection,
)
from repro.evo.problem import ConstantProblem, FunctionProblem
from repro.exceptions import DecodeError


class TestIndividual:
    def test_genome_copied(self):
        g = np.array([1.0, 2.0])
        ind = Individual(g)
        g[0] = 99.0
        assert ind.genome[0] == 1.0

    def test_uuid_assigned_and_unique(self):
        a, b = Individual([1.0]), Individual([1.0])
        assert a.uuid != b.uuid
        assert len(a.uuid) == 36

    def test_decode_without_decoder_is_genome(self):
        ind = Individual([1.0, 2.0])
        assert np.array_equal(ind.decode(), ind.genome)

    def test_evaluate_requires_problem(self):
        with pytest.raises(ValueError):
            Individual([1.0]).evaluate()

    def test_evaluate_sets_fitness_array(self):
        ind = Individual([2.0], problem=FunctionProblem(lambda x: x[0] ** 2))
        ind.evaluate()
        assert ind.fitness.shape == (1,)
        assert ind.fitness[0] == 4.0

    def test_clone_unevaluated_new_uuid(self):
        ind = Individual([1.0], problem=ConstantProblem())
        ind.evaluate()
        child = ind.clone()
        assert child.fitness is None
        assert child.uuid != ind.uuid
        assert np.array_equal(child.genome, ind.genome)

    def test_clone_genome_independent(self):
        ind = Individual([1.0])
        child = ind.clone()
        child.genome[0] = 5.0
        assert ind.genome[0] == 1.0

    def test_is_viable(self):
        ind = Individual([1.0], problem=ConstantProblem([1.0, 2.0]))
        assert not ind.is_viable  # unevaluated
        ind.evaluate()
        assert ind.is_viable

    def test_metadata_from_problem(self):
        class MetaProblem(ConstantProblem):
            def evaluate_with_metadata(self, phenome, uuid=None):
                return self.evaluate(phenome), {"runtime_minutes": 3.0}

        ind = Individual([1.0], problem=MetaProblem())
        ind.evaluate()
        assert ind.metadata["runtime_minutes"] == 3.0


class TestRobustIndividual:
    def _failing_problem(self):
        def boom(phenome):
            raise RuntimeError("training failed")

        return FunctionProblem(boom, n_objectives=2)

    def test_failure_becomes_maxint(self):
        ind = RobustIndividual([1.0], problem=self._failing_problem())
        ind.n_objectives = 2
        ind.evaluate()
        assert np.all(ind.fitness == MAXINT)

    def test_failure_records_error(self):
        ind = RobustIndividual([1.0], problem=self._failing_problem())
        ind.n_objectives = 2
        ind.evaluate()
        assert "RuntimeError" in ind.metadata["error"]

    def test_failure_not_viable(self):
        ind = RobustIndividual([1.0], problem=self._failing_problem())
        ind.n_objectives = 2
        ind.evaluate()
        assert not ind.is_viable

    def test_success_passes_through(self):
        ind = RobustIndividual([1.0], problem=ConstantProblem([0.5, 0.6]))
        ind.evaluate()
        assert np.allclose(ind.fitness, [0.5, 0.6])
        assert ind.is_viable

    def test_exception_metadata_preserved(self):
        def boom(phenome):
            exc = RuntimeError("died")
            exc.metadata = {"runtime_minutes": 1.5}
            raise exc

        ind = RobustIndividual([1.0], problem=FunctionProblem(boom, 2))
        ind.n_objectives = 2
        ind.evaluate()
        assert ind.metadata["runtime_minutes"] == 1.5

    def test_maxint_is_finite(self):
        # the entire point vs NaN: MAXINT sorts deterministically
        assert np.isfinite(MAXINT)
        assert MAXINT > 1e18


class TestFloorModDecoding:
    def test_paper_example(self):
        # §2.2.2: gene 5.78 over 3 choices -> floor(5.78) % 3 == 2 -> "none"
        assert (
            floor_mod_choice(5.78, ["linear", "sqrt", "none"]) == "none"
        )

    def test_zero_maps_to_first(self):
        assert floor_mod_choice(0.0, ["a", "b"]) == "a"

    def test_wraps_past_length(self):
        assert floor_mod_choice(7.2, ["a", "b", "c"]) == "b"

    def test_negative_values_stay_in_range(self):
        assert floor_mod_choice(-0.5, ["a", "b", "c"]) == "c"

    def test_non_finite_raises(self):
        with pytest.raises(DecodeError):
            floor_mod_choice(float("nan"), ["a"])

    def test_empty_choices_raise(self):
        with pytest.raises(DecodeError):
            floor_mod_choice(1.0, [])

    def test_floor_mod_decoder(self):
        dec = FloorModDecoder([["a", "b"], ["x", "y", "z"]])
        assert dec.decode(np.array([1.5, 5.0])) == ("b", "z")

    def test_floor_mod_decoder_length_mismatch(self):
        dec = FloorModDecoder([["a", "b"]])
        with pytest.raises(DecodeError):
            dec.decode(np.array([1.0, 2.0]))

    def test_identity_decoder(self):
        g = np.array([1.0, 2.0])
        assert np.array_equal(IdentityDecoder().decode(g), g)


class TestMixedVectorDecoder:
    def _decoder(self):
        return MixedVectorDecoder(
            [("lr", None), ("act", ["relu", "tanh"])]
        )

    def test_decodes_dict(self):
        phenome = self._decoder().decode(np.array([0.01, 3.0]))
        assert phenome == {"lr": 0.01, "act": "tanh"}

    def test_real_gene_passthrough(self):
        phenome = self._decoder().decode(np.array([123.456, 0.0]))
        assert phenome["lr"] == pytest.approx(123.456)

    def test_length_mismatch_raises(self):
        with pytest.raises(DecodeError):
            self._decoder().decode(np.array([1.0]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(DecodeError):
            MixedVectorDecoder([("a", None), ("a", None)])

    def test_empty_spec_rejected(self):
        with pytest.raises(DecodeError):
            MixedVectorDecoder([])

    def test_len(self):
        assert len(self._decoder()) == 2


class TestPipelineOps:
    def _population(self, n=10):
        pop = []
        for i in range(n):
            ind = Individual([float(i)], problem=ConstantProblem([float(i)]))
            ind.evaluate()
            pop.append(ind)
        return pop

    def test_pipe_threads_value(self):
        assert pipe(2, lambda x: x + 1, lambda x: x * 3) == 9

    def test_random_selection_uniform_coverage(self):
        pop = self._population(5)
        stream = random_selection(pop, rng=0)
        picks = [next(stream) for _ in range(500)]
        picked_ids = {id(p) for p in picks}
        assert picked_ids == {id(p) for p in pop}

    def test_random_selection_empty_raises(self):
        with pytest.raises(ValueError):
            next(random_selection([], rng=0))

    def test_clone_fresh_copies(self):
        pop = self._population(3)
        clones = list(clone(iter(pop)))
        assert all(c.fitness is None for c in clones)
        assert all(c.uuid != p.uuid for c, p in zip(clones, pop))

    def test_mutate_gaussian_changes_genome(self):
        pop = self._population(5)
        op = mutate_gaussian(std=1.0, rng=0)
        mutated = list(op(clone(iter(pop))))
        for m, p in zip(mutated, pop):
            assert not np.array_equal(m.genome, p.genome)

    def test_mutate_gaussian_respects_bounds(self):
        pop = self._population(20)
        bounds = np.array([[0.0, 10.0]])
        op = mutate_gaussian(std=100.0, hard_bounds=bounds, rng=0)
        mutated = list(op(clone(iter(pop))))
        for m in mutated:
            assert 0.0 <= m.genome[0] <= 10.0

    def test_mutate_gaussian_per_gene_std(self):
        rng = np.random.default_rng(0)
        inds = [Individual(np.zeros(2)) for _ in range(400)]
        op = mutate_gaussian(std=np.array([0.1, 10.0]), rng=rng)
        mutated = list(op(iter(inds)))
        g = np.array([m.genome for m in mutated])
        assert g[:, 0].std() < 1.0 < g[:, 1].std()

    def test_mutate_gaussian_isotropic_mutates_all_genes(self):
        ind = Individual(np.zeros(50))
        op = mutate_gaussian(std=1.0, rng=0)
        (m,) = list(op(iter([ind])))
        assert np.all(m.genome != 0.0)

    def test_mutate_gaussian_expected_num_mutations(self):
        inds = [Individual(np.zeros(100)) for _ in range(50)]
        op = mutate_gaussian(std=1.0, expected_num_mutations=1.0, rng=0)
        mutated = list(op(iter(inds)))
        rates = [np.count_nonzero(m.genome) for m in mutated]
        assert 0.2 < np.mean(rates) < 5.0

    def test_mutate_resets_fitness(self):
        pop = self._population(2)
        op = mutate_gaussian(std=0.1, rng=0)
        mutated = list(op(iter(pop)))
        assert all(m.fitness is None for m in mutated)

    def test_pool_collects_exact_count(self):
        pop = self._population(10)
        out = pool(4)(iter(pop))
        assert len(out) == 4

    def test_pool_exhausted_raises(self):
        pop = self._population(2)
        with pytest.raises(ValueError, match="exhausted"):
            pool(5)(iter(pop))

    def test_pool_invalid_size(self):
        with pytest.raises(ValueError):
            pool(0)

    def test_evaluate_op(self):
        inds = [Individual([2.0], problem=ConstantProblem([7.0]))]
        out = list(evaluate(iter(inds)))
        assert out[0].fitness[0] == 7.0

    def test_eval_pool_sequential(self):
        pop = self._population(6)
        offspring = clone(iter(pop))
        out = eval_pool(client=None, size=6)(offspring)
        assert len(out) == 6
        assert all(o.is_evaluated for o in out)

    def test_eval_pool_with_client(self):
        from repro.distributed import LocalCluster

        pop = self._population(8)
        with LocalCluster(n_workers=3) as cluster:
            out = eval_pool(client=cluster.client(), size=8)(
                clone(iter(pop))
            )
        assert len(out) == 8
        assert all(o.is_evaluated for o in out)

    def test_truncation_selection_minimizes_by_default(self):
        pop = self._population(10)
        best = truncation_selection(size=3)(pop)
        assert [b.fitness[0] for b in best] == [0.0, 1.0, 2.0]

    def test_truncation_selection_custom_key(self):
        pop = self._population(10)
        worst = truncation_selection(
            size=2, key=lambda ind: float(ind.fitness[0])
        )(pop)
        assert {w.fitness[0] for w in worst} == {9.0, 8.0}

    def test_truncation_selection_too_small_raises(self):
        with pytest.raises(ValueError):
            truncation_selection(size=5)(self._population(3))

    def test_tournament_selection_prefers_better(self):
        pop = self._population(10)
        stream = tournament_selection(pop, rng=0, k=3)
        picks = [next(stream).fitness[0] for _ in range(300)]
        # strong selection pressure toward low fitness
        assert np.mean(picks) < 3.5

    def test_tournament_empty_raises(self):
        with pytest.raises(ValueError):
            next(tournament_selection([], rng=0))

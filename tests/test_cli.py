"""Command-line interface tests (in-process, via ``main(argv)``)."""

import numpy as np
import pytest

from repro.deepmd.cli import main as dp_main
from repro.deepmd.input_config import default_input_template, render_input_json
from repro.hpo.cli import main as hpo_main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory, small_dataset):
    d = tmp_path_factory.mktemp("data")
    small_dataset.save(d)
    return d


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory, data_dir):
    d = tmp_path_factory.mktemp("run")
    variables = {
        "start_lr": 3e-3,
        "stop_lr": 1e-4,
        "rcut": 4.0,
        "rcut_smth": 1.5,
        "scale_by_worker": "none",
        "desc_activ_func": "tanh",
        "fitting_activ_func": "tanh",
        "embedding_widths": [4, 8],
        "axis_neurons": 2,
        "fitting_widths": [8],
        "numb_steps": 10,
        "batch_size": 2,
        "disp_freq": 10,
        "seed": 0,
        "data_dir": str(data_dir),
    }
    (d / "input.json").write_text(
        render_input_json(default_input_template(), variables)
    )
    return d


class TestDpCli:
    def test_gen_data(self, tmp_path, capsys):
        rc = dp_main(
            [
                "gen-data",
                str(tmp_path / "out"),
                "--frames",
                "10",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        assert (tmp_path / "out" / "manifest.json").exists()
        out = capsys.readouterr().out
        assert "training" in out

    def test_train(self, run_dir, capsys):
        rc = dp_main(["train", str(run_dir / "input.json")])
        assert rc == 0
        assert (run_dir / "lcurve.out").exists()
        assert (run_dir / "model.npz").exists()
        assert "rmse_f_val" in capsys.readouterr().out

    def test_test_subcommand(self, run_dir, capsys):
        # requires the model from test_train (module-ordered)
        if not (run_dir / "model.npz").exists():
            dp_main(["train", str(run_dir / "input.json")])
            capsys.readouterr()
        rc = dp_main(
            [
                "test",
                str(run_dir / "input.json"),
                str(run_dir / "model.npz"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rmse_e=" in out and "rmse_f=" in out

    def test_test_subcommand_train_split(self, run_dir, capsys):
        if not (run_dir / "model.npz").exists():
            dp_main(["train", str(run_dir / "input.json")])
            capsys.readouterr()
        rc = dp_main(
            [
                "test",
                str(run_dir / "input.json"),
                str(run_dir / "model.npz"),
                "--split",
                "train",
            ]
        )
        assert rc == 0
        assert "train frames" in capsys.readouterr().out

    def test_train_without_data_errors(self, tmp_path, capsys):
        variables = {
            "start_lr": 1e-3,
            "stop_lr": 1e-5,
            "rcut": 4.0,
            "rcut_smth": 1.5,
            "scale_by_worker": "none",
            "desc_activ_func": "tanh",
            "fitting_activ_func": "tanh",
            "embedding_widths": [4],
            "axis_neurons": 2,
            "fitting_widths": [4],
            "numb_steps": 5,
            "batch_size": 1,
            "disp_freq": 5,
            "seed": 0,
            "data_dir": "",
        }
        (tmp_path / "input.json").write_text(
            render_input_json(default_input_template(), variables)
        )
        rc = dp_main(["train", str(tmp_path / "input.json")])
        assert rc == 2


class TestHpoCli:
    def test_surrogate_campaign(self, capsys):
        rc = hpo_main(
            [
                "campaign",
                "--runs",
                "2",
                "--pop-size",
                "20",
                "--generations",
                "2",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "total trainings: 120" in out

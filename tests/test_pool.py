"""Process-pool backend tests: protocol, equivalence, chaos, resume.

Spawn-started workers re-import every class a task references, so all
problems used here live at module level (or come from ``repro``
itself) — a locally-defined problem would fail to pickle, which is
itself covered by a test.

Worker startup is real interpreter startup (~1 s each), so the suite
keeps pools small (1–2 workers) and reuses one campaign per scenario.
"""

import pickle
import time

import numpy as np
import pytest

from repro.chaos import Fault, FaultPlan, InvariantChecker
from repro.engine import (
    EvaluationEngine,
    ProcessPoolBackend,
    as_backend,
)
from repro.evo.individual import MAXINT, Individual
from repro.exceptions import TrainingTimeoutError, WorkerFailure
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.injection import use_injector
from repro.obs import CampaignStatus, Tracer, use_status, use_tracer
from repro.obs.metrics import MetricsRegistry
from repro.store.cache import CachedProblem, EvaluationCache
from repro.store.journal import CampaignJournal, journal_path
from repro.store.resume import resume_campaign

CFG = CampaignConfig(n_runs=1, pop_size=6, generations=2, base_seed=11)


class SleepyProblem:
    """Picklable problem that sleeps long enough to trip a deadline."""

    n_objectives = 2

    def __init__(self, duration: float) -> None:
        self.duration = duration

    def evaluate(self, phenome):
        time.sleep(self.duration)
        return np.array([1.0, 2.0])


def _surrogate_individuals(n, seed=0):
    from repro.evo.algorithm import random_initial_population
    from repro.hpo.representation import DeepMDRepresentation

    return random_initial_population(
        n,
        DeepMDRepresentation.init_ranges,
        SurrogateDeepMDProblem(seed=seed),
        decoder=DeepMDRepresentation.decoder(),
        rng=seed,
    )


def _evals(result):
    return sorted(
        (
            tuple(float(g) for g in ind.genome),
            tuple(float(f) for f in np.atleast_1d(ind.fitness)),
        )
        for run in result.runs
        for rec in run
        for ind in rec.evaluated
    )


def _front(result):
    return sorted(
        (tuple(ind.genome), tuple(ind.fitness))
        for ind in result.aggregate_pareto_front()
    )


class TestProtocol:
    def test_is_execution_backend(self):
        assert ProcessPoolBackend.is_execution_backend
        with ProcessPoolBackend(workers=1) as pool:
            # a pool instance passes through as_backend untouched, so
            # drivers accept it via the existing client= parameter
            assert as_backend(pool) is pool

    def test_unpicklable_submission_is_a_clear_typeerror(self):
        class Local:  # noqa: F841 - deliberately unpicklable
            n_objectives = 2

            def evaluate(self, phenome):
                return np.zeros(2)

        with ProcessPoolBackend(workers=1) as pool:
            with pytest.raises(TypeError, match="pickle"):
                pool.submit(Individual(np.zeros(2), problem=Local()))

    def test_close_is_idempotent_and_fails_inflight(self):
        pool = ProcessPoolBackend(workers=1)
        future = pool.submit(
            Individual(np.zeros(2), problem=SleepyProblem(30.0))
        )
        time.sleep(0.1)
        pool.close()
        pool.close()
        with pytest.raises(WorkerFailure):
            future.result(timeout=1.0)
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(Individual(np.zeros(2)))

    def test_problem_state_survives_pickling(self):
        """A pickled replica evaluates every phenome identically —
        including phenomes the landscape deterministically fails."""

        def outcome(problem, phenome):
            try:
                return tuple(np.asarray(problem.evaluate(phenome)))
            except Exception as exc:  # noqa: BLE001 - part of the landscape
                return repr(exc)

        problem = SurrogateDeepMDProblem(seed=3)
        clone = pickle.loads(pickle.dumps(problem))
        for ind in _surrogate_individuals(6, seed=5):
            phenome = ind.decode()
            assert outcome(problem, phenome) == outcome(clone, phenome)


class TestEngineIntegration:
    def test_pool_results_bit_identical_to_inline(self):
        inline = EvaluationEngine(metrics=MetricsRegistry())
        done_inline = inline.evaluate(_surrogate_individuals(8))
        with ProcessPoolBackend(workers=2) as pool:
            engine = EvaluationEngine(
                client=pool, metrics=MetricsRegistry()
            )
            done_pool = engine.evaluate(_surrogate_individuals(8))
        for a, b in zip(done_inline, done_pool):
            assert np.array_equal(a.fitness, b.fitness)
            assert a.metadata == b.metadata

    def test_deadline_overrun_becomes_maxint(self):
        with ProcessPoolBackend(workers=1, deadline=0.3) as pool:
            engine = EvaluationEngine(
                client=pool, metrics=MetricsRegistry()
            )
            done = engine.evaluate(
                [Individual(np.zeros(2), problem=SleepyProblem(30.0))]
            )
        (ind,) = done
        assert np.all(ind.fitness == MAXINT)
        assert "TrainingTimeoutError" in ind.metadata["error"]

    def test_deadline_error_surfaces_without_engine(self):
        with ProcessPoolBackend(workers=1, deadline=0.3) as pool:
            future = pool.submit(
                Individual(np.zeros(2), problem=SleepyProblem(30.0))
            )
            with pytest.raises(TrainingTimeoutError):
                future.result(timeout=15.0)


class TestCampaignEquivalence:
    def test_generational_pool_front_matches_inline(self):
        factory = lambda seed: SurrogateDeepMDProblem(seed=seed)  # noqa: E731
        inline = Campaign(factory, CFG).run()
        with ProcessPoolBackend(workers=2) as pool:
            pooled = Campaign(factory, CFG, client=pool).run()
        assert _evals(inline) == _evals(pooled)
        assert _front(inline) == _front(pooled)


class TestPoolObservability:
    def test_worker_spans_cross_the_pipe(self):
        """Each pool evaluation produces a worker-side ``worker.task``
        span that the parent tracer ingests: fresh local span ids, no
        foreign parent links, and worker/task/pid tags joining it to
        the parent-side ``task.submit`` events."""
        tracer = Tracer()
        with use_tracer(tracer):
            with ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                engine.evaluate(_surrogate_individuals(4))
        spans = tracer.spans("worker.task")
        assert len(spans) == 4
        assert len({s["id"] for s in spans}) == 4
        submit_at = {
            e["tags"]["task"]: e["mono"]
            for e in tracer.events("task.submit")
        }
        for span in spans:
            assert span["parent"] is None
            assert span["tags"]["worker"] == "pool-0"
            assert span["tags"]["pid"] > 0
            task = span["tags"]["task"]
            assert task.startswith("pool-task-")
            # CLOCK_MONOTONIC is shared across processes on one host,
            # so queue waits (submit -> span start) are joinable
            assert span["mono"] >= submit_at[task]

    def test_pool_publishes_worker_liveness_and_gauges(self):
        status = CampaignStatus()
        registry = MetricsRegistry()
        with use_status(status):
            with ProcessPoolBackend(workers=1, metrics=registry) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                engine.evaluate(_surrogate_individuals(3))
                worker = status.snapshot()["workers"]["pool-0"]
                assert worker["state"] == "idle"
                assert worker["tasks_dispatched"] == 3
                assert worker["respawns"] == 0
                assert worker["pid"] > 0
        # the wave drained: transition gauges settled back to zero
        assert registry.gauge("pool_queue_depth").value == 0
        assert registry.gauge("pool_busy_workers").value == 0
        assert (
            registry.counter("pool_tasks_dispatched_total").value == 3
        )


class TestPoolChaos:
    def test_worker_death_yields_maxint_and_clean_invariants(
        self, tmp_path
    ):
        """A worker SIGKILLed mid-evaluation fails only its task
        (→ MAXINT), the campaign completes with clean store invariants,
        and a journal resume reproduces it bit-identically."""
        plan = FaultPlan([Fault(kind="worker_death", at=2)])
        injector = plan.injector()
        cache = EvaluationCache(tmp_path / "cache")
        journal = CampaignJournal(
            journal_path(tmp_path), problem_spec={"backend": "surrogate"}
        )

        def factory(seed):
            return CachedProblem(SurrogateDeepMDProblem(seed=seed), cache)

        try:
            # one worker: dispatch order == submission order, so the
            # fault window (3rd dispatched task) is deterministic
            with use_injector(injector), ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                result = Campaign(
                    factory, CFG, client=pool, journal=journal
                ).run()
        finally:
            journal.close()

        assert [(f.kind, f.index) for f in injector.log] == [
            ("worker_death", 2)
        ]
        failed = [
            ind
            for run in result.runs
            for rec in run
            for ind in rec.evaluated
            if not ind.is_viable
        ]
        assert len(failed) == 1
        assert np.all(failed[0].fitness == MAXINT)
        assert "pool-0" in failed[0].metadata["error"]

        report = InvariantChecker(
            journal=journal_path(tmp_path),
            cache_dir=tmp_path / "cache",
            injected=injector.log,
        ).check()
        assert report.ok, report.summary()

        resumed = resume_campaign(tmp_path, cache=cache)
        assert _evals(resumed) == _evals(result)
        assert _front(resumed) == _front(result)

    def test_worker_death_respawn_is_traced_and_published(self):
        """A killed worker leaves a full audit trail: death + respawn
        events in the trace, the respawn counters bumped, and the
        /status worker entry carrying the respawn count."""
        plan = FaultPlan([Fault(kind="worker_death", at=1)])
        tracer = Tracer()
        status = CampaignStatus()
        registry = MetricsRegistry()
        with use_injector(plan.injector()), use_tracer(tracer), use_status(
            status
        ):
            with ProcessPoolBackend(workers=1, metrics=registry) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(3))
        assert sum(1 for ind in done if not ind.is_viable) == 1
        (death,) = tracer.events("pool.worker_death")
        assert death["tags"]["worker"] == "pool-0"
        (respawn,) = tracer.events("pool.worker_respawn")
        assert respawn["tags"]["respawns"] == 1
        assert registry.counter("pool_worker_deaths_total").value == 1
        assert registry.counter("pool_worker_respawns_total").value == 1
        worker = status.snapshot()["workers"]["pool-0"]
        assert worker["respawns"] == 1

    def test_injected_delay_only_slows(self):
        """slow_worker faults change wall-clock, never results."""
        baseline = EvaluationEngine(metrics=MetricsRegistry()).evaluate(
            _surrogate_individuals(3)
        )
        plan = FaultPlan(
            [Fault(kind="slow_worker", at=0, count=2, seconds=0.05)]
        )
        with use_injector(plan.injector()):
            with ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(3))
        for a, b in zip(baseline, done):
            assert np.array_equal(a.fitness, b.fitness)

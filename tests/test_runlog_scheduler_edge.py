"""Tests for the campaign run journal and the scheduler's worker-grace
edge cases (stranded-task handling)."""

import json
import time

import numpy as np
import pytest

from repro.distributed import Client, Scheduler, Worker
from repro.exceptions import WorkerFailure
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.io import RunLogger, read_runlog, summarize_runlog


class TestRunLogger:
    @pytest.fixture()
    def journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        logger = RunLogger(path)
        Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed),
            CampaignConfig(
                n_runs=2, pop_size=10, generations=2, base_seed=3
            ),
        ).run(callback=logger)
        return path, logger

    def test_one_event_per_generation(self, journal):
        path, logger = journal
        events = read_runlog(path)
        assert len(events) == 2 * 3  # 2 runs x (1 + 2) generations
        assert logger.events_written == 6

    def test_events_carry_progress_fields(self, journal):
        path, _ = journal
        events = read_runlog(path)
        for e in events:
            assert {"run", "generation", "evaluated", "failures"} <= set(e)
            assert e["evaluated"] == 10

    def test_std_annealed_in_journal(self, journal):
        path, _ = journal
        events = read_runlog(path)
        run0 = [e for e in events if e["run"] == 0]
        stds = [e["mutation_std_first_gene"] for e in run0]
        assert stds[1] == pytest.approx(stds[0] * 0.85)

    def test_summary(self, journal):
        path, _ = journal
        digest = summarize_runlog(read_runlog(path))
        assert digest["runs"] == 2
        assert digest["evaluations"] == 60
        assert np.isfinite(digest["best_force"])

    def test_truncated_tail_tolerated(self, journal):
        path, _ = journal
        raw = path.read_text()
        path.write_text(raw + '{"run": 1, "generation"')  # torn write
        events = read_runlog(path)
        assert len(events) == 6  # the torn line is dropped

    def test_empty_summary(self):
        assert summarize_runlog([])["evaluations"] == 0


class TestSchedulerGraceEdgeCases:
    def test_submit_with_no_workers_fails_after_grace(self):
        sched = Scheduler(worker_grace_seconds=0.1)
        fut = sched.submit(lambda: 1)
        with pytest.raises(WorkerFailure, match="stranded"):
            fut.result(timeout=5)

    def test_worker_arriving_within_grace_rescues_task(self):
        sched = Scheduler(worker_grace_seconds=1.0)
        fut = sched.submit(lambda: "rescued")
        worker = Worker(sched, "late")
        worker.start()
        try:
            assert fut.result(timeout=5) == "rescued"
        finally:
            sched.close()
            worker.stop()

    def test_tasks_submitted_after_all_workers_die(self):
        sched = Scheduler(worker_grace_seconds=0.1)
        worker = Worker(sched, "w0")
        worker.start()
        Client(sched).submit(lambda: 1).result(timeout=5)
        worker.stop()  # graceful shutdown; worker unregisters
        # wait until the scheduler has no workers
        deadline = time.monotonic() + 2
        while sched.n_workers and time.monotonic() < deadline:
            time.sleep(0.01)
        fut = sched.submit(lambda: 2)
        with pytest.raises(WorkerFailure):
            fut.result(timeout=5)

    def test_closed_scheduler_does_not_strand(self):
        sched = Scheduler(worker_grace_seconds=0.05)
        worker = Worker(sched, "w0")
        worker.start()
        sched.close()
        worker.stop()
        # closing is a clean shutdown: no strand-timer explosions
        assert sched.n_workers == 0

"""Tests for the table/figure regeneration layer (repro.analysis)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    convergence_summary,
    format_table,
    frontier_table,
    generation_level_plots,
    parallel_coordinates,
    sparkline,
    table3_rows,
)
from repro.analysis.convergence import hypervolume_progress
from repro.evo import MAXINT, Individual
from repro.analysis.levelplot import CULL_ENERGY_MAX, CULL_FORCE_MAX
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem


@pytest.fixture(scope="module")
def campaign_result():
    config = CampaignConfig(
        n_runs=3, pop_size=40, generations=4, base_seed=2023
    )
    return Campaign(
        lambda seed: SurrogateDeepMDProblem(seed=seed), config
    ).run()


class TestLevelPlots:
    def test_one_panel_per_generation(self, campaign_result):
        panels = generation_level_plots(campaign_result)
        assert len(panels) == 5
        assert [p.generation for p in panels] == [0, 1, 2, 3, 4]

    def test_max_generation_limits_panels(self, campaign_result):
        panels = generation_level_plots(campaign_result, max_generation=2)
        assert len(panels) == 3

    def test_culling_thresholds_match_paper(self):
        assert CULL_FORCE_MAX == 0.6
        assert CULL_ENERGY_MAX == 0.03

    def test_generation_zero_has_culled_outliers(self, campaign_result):
        panels = generation_level_plots(campaign_result)
        assert panels[0].n_culled > 0

    def test_late_generations_concentrate(self, campaign_result):
        panels = generation_level_plots(campaign_result)
        first = panels[0].summary()
        last = panels[-1].summary()
        assert last["median_force"] < first["median_force"]

    def test_histogram_counts_match_kept_points(self, campaign_result):
        panels = generation_level_plots(campaign_result)
        p = panels[-1]
        kept = (
            (p.forces <= CULL_FORCE_MAX) & (p.energies <= CULL_ENERGY_MAX)
        ).sum()
        assert p.histogram.sum() == kept

    def test_failed_counted_separately(self, campaign_result):
        panels = generation_level_plots(campaign_result)
        total_failed = sum(p.n_failed for p in panels)
        assert total_failed == sum(
            campaign_result.failures_by_generation()
        )


class TestFrontierTable:
    def test_rows_sorted_by_force(self, campaign_result):
        table = frontier_table(campaign_result)
        forces = [r["force error (eV/A)"] for r in table.rows()]
        assert forces == sorted(forces)

    def test_monotone_tradeoff(self, campaign_result):
        table = frontier_table(campaign_result)
        assert table.monotone_tradeoff()

    def test_solution_numbering(self, campaign_result):
        rows = frontier_table(campaign_result).rows()
        assert [r["solution"] for r in rows] == list(
            range(1, len(rows) + 1)
        )

    def test_accepts_individual_list(self, campaign_result):
        pool = campaign_result.last_generation_individuals()
        table = frontier_table(pool)
        assert len(table) >= 1

    def test_fitness_matrix_shape(self, campaign_result):
        table = frontier_table(campaign_result)
        assert table.fitness_matrix().shape == (len(table), 2)


class TestParallelCoordinates:
    def test_rows_have_all_axes(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        from repro.analysis.parallel_coords import AXES

        for axis in AXES:
            assert axis in data.rows[0]

    def test_only_viable_rows(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        assert all(np.isfinite(r["force_loss"]) for r in data.rows)

    def test_frontier_membership_marked(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        n_frontier = sum(r["on_frontier"] for r in data.rows)
        assert n_frontier == len(frontier_table(campaign_result))

    def test_accurate_rows_subset(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        accurate = data.accurate_rows()
        assert all(r["force_loss"] < 0.04 for r in accurate)
        assert all(r["energy_loss"] < 0.004 for r in accurate)

    def test_categorical_counts(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        counts = data.categorical_counts("scale_by_worker")
        assert sum(counts.values()) == len(data)
        assert set(counts) <= {"linear", "sqrt", "none"}

    def test_unknown_axis_raises(self, campaign_result):
        data = parallel_coordinates(campaign_result)
        with pytest.raises(KeyError):
            data.axis_values("nonexistent")

    def test_accurate_solutions_have_large_rcut(self, campaign_result):
        """The §3.2 finding: chemically accurate solutions sit in the
        upper rcut range."""
        data = parallel_coordinates(campaign_result)
        accurate = data.accurate_rows()
        if accurate:
            assert min(r["rcut"] for r in accurate) > 7.5


class TestTable3:
    def test_three_criteria(self, campaign_result):
        rows = table3_rows(campaign_result)
        assert [r.criterion for r in rows] == [
            "lowest force loss",
            "lowest energy loss",
            "lowest runtime",
        ]

    def test_rows_carry_all_genes(self, campaign_result):
        from repro.hpo.representation import GENE_NAMES

        rows = [r.as_dict() for r in table3_rows(campaign_result)]
        for row in rows:
            if row["found"]:
                for gene in GENE_NAMES:
                    assert gene in row

    def test_criteria_are_minima(self, campaign_result):
        from repro.hpo.chemical import filter_chemically_accurate

        accurate = filter_chemically_accurate(
            campaign_result.last_generation_individuals()
        )
        rows = table3_rows(campaign_result)
        by_name = {r.criterion: r.individual for r in rows}
        if accurate:
            min_force = min(float(i.fitness[1]) for i in accurate)
            assert float(
                by_name["lowest force loss"].fitness[1]
            ) == pytest.approx(min_force)

    def test_empty_pool_yields_not_found(self):
        rows = table3_rows([])
        assert all(not r.as_dict()["found"] for r in rows)


class TestConvergence:
    def test_summary_covers_generations(self, campaign_result):
        summary = convergence_summary(campaign_result)
        assert summary.generations == [0, 1, 2, 3, 4]

    def test_first_step_largest_shift(self, campaign_result):
        """§3.1: the big clean-up happens in the first EA step."""
        summary = convergence_summary(campaign_result)
        shifts = summary.median_shift()
        assert shifts[0] == shifts.max()

    def test_converged_by_before_end(self, campaign_result):
        summary = convergence_summary(campaign_result)
        g = summary.converged_by(tolerance=0.5)
        assert g <= 4

    def test_iqr_shrinks(self, campaign_result):
        summary = convergence_summary(campaign_result)
        assert summary.iqr_force[-1] < summary.iqr_force[0]


def _scored(fitness) -> Individual:
    ind = Individual(np.zeros(2))
    ind.fitness = np.asarray(fitness, dtype=np.float64)
    return ind


def _campaign_of(*runs):
    """A CampaignResult stand-in: runs of per-generation populations."""
    return SimpleNamespace(
        runs=[
            [
                SimpleNamespace(population=list(pop), generation=g)
                for g, pop in enumerate(run)
            ]
            for run in runs
        ]
    )


class TestHypervolumeProgress:
    def test_healthy_campaign_all_finite(self, campaign_result):
        hv = hypervolume_progress(campaign_result)
        assert hv.shape == (5,)
        assert np.all(np.isfinite(hv))
        assert hv[-1] > 0.0

    def test_single_point_generation(self):
        result = _campaign_of([[_scored([0.01, 0.1])]])
        hv = hypervolume_progress(result)
        assert hv.shape == (1,)
        assert np.isfinite(hv[0])
        assert hv[0] > 0.0

    def test_duplicate_objectives(self):
        result = _campaign_of(
            [[_scored([0.01, 0.1]) for _ in range(5)]]
        )
        hv = hypervolume_progress(result)
        assert np.all(np.isfinite(hv))

    def test_all_maxint_generation_contributes_zero(self):
        result = _campaign_of(
            [
                [_scored([MAXINT, MAXINT]) for _ in range(4)],
                [_scored([0.01, 0.1])],
            ]
        )
        hv = hypervolume_progress(result)
        assert hv[0] == 0.0
        assert hv[1] > 0.0
        assert np.all(np.isfinite(hv))

    def test_nonfinite_losses_below_maxint_filtered(self):
        # -inf is "viable" by the MAXINT test but must never reach the
        # hypervolume kernel
        result = _campaign_of(
            [[_scored([-np.inf, 0.1]), _scored([0.01, 0.1])]]
        )
        hv = hypervolume_progress(result)
        assert np.all(np.isfinite(hv))

    def test_empty_generation_and_ragged_runs(self):
        result = _campaign_of(
            [[_scored([0.01, 0.1])]],  # 1-generation run
            [[], [_scored([0.012, 0.09])]],  # empty generation 0
        )
        hv = hypervolume_progress(result)
        assert hv.shape == (2,)
        assert np.all(np.isfinite(hv))

    def test_points_beyond_reference_stay_finite(self):
        result = _campaign_of([[_scored([0.05, 0.5])]])
        hv = hypervolume_progress(result)
        assert np.all(np.isfinite(hv))
        assert np.all(hv >= 0.0)


class TestSparkline:
    def test_empty_is_empty_string(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_blocks(self):
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"

    def test_ramp_spans_glyph_range(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(text) == 4
        assert text[0] == "▁"
        assert text[-1] == "█"

    def test_nonfinite_values_render_blank(self):
        text = sparkline([0.0, float("nan"), 1.0])
        assert len(text) == 3
        assert text[1] == " "

    def test_all_nonfinite_is_blank(self):
        assert sparkline([float("nan"), float("inf")]) == "  "

    def test_width_keeps_most_recent_values(self):
        text = sparkline(list(range(100)), width=10)
        assert len(text) == 10
        assert text[-1] == "█"


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.00012}],
            title="T",
        )
        assert text.splitlines()[0] == "T"
        assert "a" in text and "b" in text
        assert "1.2" in text  # scientific formatting of small floats

    def test_empty_rows(self):
        assert "(empty)" in format_table([], title="x")

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

"""Property-based tests (hypothesis) on the N-D multiobjective metrics.

The N-D generalization of :mod:`repro.mo.metrics` carries hard
contracts the 2-objective stack depends on: the d=2 path of
``hypervolume`` must be *bit-identical* to the historical
``hypervolume_2d`` (the live telemetry gauge feeds from it), the exact
d=3 slicing must agree with inclusion-exclusion and with the
Monte-Carlo fallback, hypervolume must be monotone and
permutation-invariant, and the d≥3 NSGA-II kernels must stay
implementation-equivalent.  Fixed-input degenerate-front regressions
(the ``_as_front`` bugfix) ride along.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.evo.nsga2 import (
    crowding_distance,
    fast_nondominated_sort,
    rank_ordinal_sort,
)
from repro.mo.metrics import (
    DEFAULT_OBJECTIVE_REFERENCES,
    default_reference,
    hypervolume,
    hypervolume_2d,
    spread,
    spread_2d,
)
from repro.mo.stopping import HypervolumeStopper

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
fronts_2d = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 30), st.just(2)),
    elements=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)

fronts_3d = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 20), st.just(3)),
    elements=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)

matrices_3d = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.just(3)),
    elements=st.floats(
        min_value=-100.0, max_value=100.0, allow_nan=False
    ),
)

REF2 = (2.5, 2.5)
REF3 = (2.5, 2.5, 2.5)


def _hv_3d_inclusion_exclusion(F: np.ndarray, ref) -> float:
    """Oracle: inclusion-exclusion over the dominated boxes (O(2^n),
    keep fronts tiny)."""
    pts = F[np.all(F < np.asarray(ref), axis=1)]
    n = len(pts)
    total = 0.0
    for mask in range(1, 1 << n):
        chosen = pts[[i for i in range(n) if mask >> i & 1]]
        corner = chosen.max(axis=0)
        vol = float(np.prod(np.asarray(ref) - corner))
        total += vol if bin(mask).count("1") % 2 == 1 else -vol
    return total


class TestHypervolume2dEquivalence:
    @given(fronts_2d)
    @settings(max_examples=200, deadline=None)
    def test_nd_entry_point_is_bit_identical_to_2d(self, F):
        a = hypervolume(F, REF2)
        b = hypervolume_2d(F, REF2)
        # bit-identical, not just close: the N-D entry point must share
        # the historical 2-D float-operation order
        assert np.float64(a).view(np.uint64) == np.float64(b).view(
            np.uint64
        )


class TestHypervolume3dExactness:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 8), st.just(3)),
            elements=st.floats(
                min_value=0.0, max_value=2.0, allow_nan=False
            ),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_slicing_matches_inclusion_exclusion(self, F):
        exact = hypervolume(F, REF3)
        oracle = _hv_3d_inclusion_exclusion(F, REF3)
        assert math.isclose(exact, oracle, rel_tol=1e-9, abs_tol=1e-12)

    @given(fronts_3d)
    @settings(max_examples=30, deadline=None)
    def test_monte_carlo_agrees_with_exact(self, F):
        from repro.mo.metrics import _as_front, _hv_monte_carlo

        front = _as_front(F, reference=REF3)
        if not len(front):
            return
        exact = hypervolume(F, REF3)
        mc = _hv_monte_carlo(
            front, np.asarray(REF3), n_samples=20_000, seed=2023
        )
        box = float(np.prod(np.asarray(REF3) - front.min(axis=0)))
        assert abs(mc - exact) <= 0.05 * box + 1e-9


class TestHypervolumeAlgebra:
    @given(fronts_3d, st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_monotone_under_added_point(self, F, seed):
        base = hypervolume(F, REF3)
        extra = np.random.default_rng(seed).uniform(0.0, 2.4, size=3)
        grown = hypervolume(np.vstack([F, extra[None, :]]), REF3)
        assert grown >= base - 1e-12

    @given(fronts_3d, st.permutations([0, 1, 2]))
    @settings(max_examples=100, deadline=None)
    def test_invariant_under_objective_permutation(self, F, perm):
        ref = np.asarray([2.2, 2.5, 2.8])
        a = hypervolume(F, tuple(ref))
        b = hypervolume(F[:, perm], tuple(ref[perm]))
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    @given(fronts_2d)
    @settings(max_examples=100, deadline=None)
    def test_dominated_points_never_add_volume(self, F):
        base = hypervolume(F, REF2)
        worst = F.max(axis=0) + 0.1
        grown = hypervolume(np.vstack([F, worst[None, :]]), REF2)
        assert math.isclose(base, grown, rel_tol=1e-12, abs_tol=1e-12)


class TestKernelEquivalence3d:
    @given(matrices_3d)
    @settings(max_examples=100, deadline=None)
    def test_rank_sorts_agree(self, F):
        assert np.array_equal(
            rank_ordinal_sort(F), fast_nondominated_sort(F)
        )

    @given(matrices_3d)
    @settings(max_examples=100, deadline=None)
    def test_crowding_scalar_vectorized_bit_identical(self, F):
        ranks = rank_ordinal_sort(F)
        scalar = crowding_distance(F, ranks, impl="scalar")
        vector = crowding_distance(F, ranks, impl="vectorized")
        assert np.array_equal(
            scalar.view(np.uint64), vector.view(np.uint64)
        )


# ----------------------------------------------------------------------
# degenerate fronts: the _as_front bugfix regressions
# ----------------------------------------------------------------------
class TestDegenerateFronts:
    def test_empty_front_is_zero_not_error(self):
        assert hypervolume([], (1.0, 1.0)) == 0.0
        assert hypervolume(np.empty((0, 3)), (1.0, 1.0, 1.0)) == 0.0

    def test_non_finite_rows_dropped(self):
        F = [[0.5, 0.5], [np.nan, 0.1], [0.1, np.inf]]
        assert hypervolume(F, (1.0, 1.0)) == hypervolume(
            [[0.5, 0.5]], (1.0, 1.0)
        )

    def test_all_rows_beyond_reference_is_zero(self):
        assert hypervolume([[3.0, 3.0], [5.0, 1.5]], (1.0, 1.0)) == 0.0

    def test_single_point_1d(self):
        assert hypervolume([[0.25]], (1.0,)) == pytest.approx(0.75)

    def test_spread_2d_empty_is_nan(self):
        assert np.isnan(spread_2d(np.empty((0, 2))))

    def test_spread_nd_matches_2d_on_two_objectives(self):
        F = np.array([[0.0, 1.0], [0.4, 0.5], [1.0, 0.0]])
        assert spread(F) == spread_2d(F)

    def test_spread_3d_uniform_small(self):
        # evenly spaced points on a 3-D line: near-zero spread
        t = np.linspace(0.0, 1.0, 6)
        F = np.column_stack([t, 1.0 - t, t * 0.5])
        assert spread(F) < 1e-9

    def test_default_reference_padding(self):
        assert default_reference(2) == DEFAULT_OBJECTIVE_REFERENCES[:2]
        assert default_reference(3) == DEFAULT_OBJECTIVE_REFERENCES
        assert default_reference(5) == DEFAULT_OBJECTIVE_REFERENCES + (
            DEFAULT_OBJECTIVE_REFERENCES[-1],
        ) * 2


# ----------------------------------------------------------------------
# the hypervolume early stop
# ----------------------------------------------------------------------
class _FrontRecord:
    def __init__(self, generation, points):
        from repro.evo.individual import RobustIndividual

        self.generation = generation
        self.population = []
        for p in points:
            ind = RobustIndividual(np.zeros(2))
            ind.fitness = np.asarray(p, dtype=np.float64)
            self.population.append(ind)


class TestHypervolumeStopper:
    def test_stops_after_patience_stalled_generations(self):
        stopper = HypervolumeStopper(
            eps=1e-3, patience=2, reference=(1.0, 1.0), min_generations=1
        )
        assert not stopper.observe(_FrontRecord(0, [[0.5, 0.5]]))
        assert not stopper.observe(_FrontRecord(1, [[0.4, 0.4]]))
        # two flat generations: stalled == patience -> stop
        assert not stopper.observe(_FrontRecord(2, [[0.4, 0.4]]))
        assert stopper.observe(_FrontRecord(3, [[0.4, 0.4]]))
        assert stopper.stopped

    def test_improvement_resets_the_stall_counter(self):
        stopper = HypervolumeStopper(
            eps=1e-3, patience=2, reference=(1.0, 1.0), min_generations=1
        )
        stopper.observe(_FrontRecord(0, [[0.5, 0.5]]))
        stopper.observe(_FrontRecord(1, [[0.5, 0.5]]))
        # a real gain wipes the stall streak
        assert not stopper.observe(_FrontRecord(2, [[0.2, 0.2]]))
        assert not stopper.observe(_FrontRecord(3, [[0.2, 0.2]]))
        assert stopper.observe(_FrontRecord(4, [[0.2, 0.2]]))

    def test_min_generations_holds_the_stop_back(self):
        stopper = HypervolumeStopper(
            eps=1e-3, patience=1, reference=(1.0, 1.0), min_generations=5
        )
        for g in range(4):
            assert not stopper.observe(_FrontRecord(g, [[0.5, 0.5]]))
        assert stopper.observe(_FrontRecord(4, [[0.5, 0.5]]))

    def test_sticky_once_stopped(self):
        stopper = HypervolumeStopper(
            eps=1e-3, patience=1, reference=(1.0, 1.0), min_generations=1
        )
        stopper.observe(_FrontRecord(0, [[0.5, 0.5]]))
        stopper.observe(_FrontRecord(1, [[0.5, 0.5]]))
        assert stopper.observe(_FrontRecord(2, [[0.5, 0.5]]))
        # even a huge improvement cannot un-stop a stopped run
        assert stopper.observe(_FrontRecord(3, [[0.01, 0.01]]))

    def test_three_objective_fronts_use_default_reference(self):
        stopper = HypervolumeStopper(eps=1e-3, patience=1)
        rec = _FrontRecord(0, [[0.01, 0.1, 100.0]])
        stopper.observe(rec)
        assert stopper.history[-1][1] > 0.0

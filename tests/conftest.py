"""Shared fixtures.

The expensive fixtures (MD dataset, trained batches) are session-scoped
so the integration-heavy test files reuse one instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.dataset import FrameDataset, generate_dataset


@pytest.fixture(scope="session")
def small_dataset() -> FrameDataset:
    """A 20-atom molten-salt dataset: ~30 frames, fast to train on."""
    return generate_dataset(
        n_frames=32,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=60,
        sample_interval=4,
        rng=1234,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)

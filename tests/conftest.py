"""Shared fixtures.

The expensive fixtures (MD dataset, trained batches) are session-scoped
so the integration-heavy test files reuse one instance.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.md.dataset import FrameDataset, generate_dataset


@pytest.fixture(autouse=True)
def _reap_pool_workers():
    """Kill pool worker processes a test leaked.

    A test that lets a ``ProcessPoolBackend`` fall out of scope without
    ``close()`` (or dies mid-assertion) leaves live ``repro-pool-*``
    children behind; they hold the test session open at exit and skew
    any later test that counts live processes.  Reap them in teardown
    so every test starts from a quiet process table.
    """
    yield
    for child in multiprocessing.active_children():
        if (child.name or "").startswith("repro-pool-"):
            child.kill()
            child.join(timeout=5)


@pytest.fixture(scope="session")
def small_dataset() -> FrameDataset:
    """A 20-atom molten-salt dataset: ~30 frames, fast to train on."""
    return generate_dataset(
        n_frames=32,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=60,
        sample_interval=4,
        rng=1234,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)

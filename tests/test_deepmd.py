"""Tests for the DeePMD surrogate: descriptor, model, trainer, lcurve,
input templating, and the runner/CLI surface."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.deepmd.data import DescriptorBatch, prepare_batches
from repro.deepmd.descriptor import (
    DescriptorConfig,
    SmoothDescriptor,
    smooth_switch,
)
from repro.deepmd.input_config import (
    InputConfig,
    default_input_template,
    render_input_json,
)
from repro.deepmd.lcurve import LCurve, read_lcurve, write_lcurve
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.runner import (
    execute_training,
    prepare_run_directory,
    run_training,
)
from repro.deepmd.training import Trainer, TrainingConfig
from repro.exceptions import (
    ConfigurationError,
    TrainingDivergedError,
    TrainingTimeoutError,
)


class TestSmoothSwitch:
    def test_inner_region_is_inverse_r(self):
        r = Tensor([1.0, 2.0])
        s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
        assert np.allclose(s.data, [1.0, 0.5])

    def test_zero_beyond_cutoff(self):
        r = Tensor([6.0, 7.0, 100.0])
        s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
        assert np.allclose(s.data, 0.0)

    def test_continuous_at_rcut_smth(self):
        eps = 1e-9
        r = Tensor([3.0 - eps, 3.0 + eps])
        s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
        assert abs(s.data[0] - s.data[1]) < 1e-6

    def test_continuous_at_rcut(self):
        eps = 1e-9
        r = Tensor([6.0 - eps, 6.0 + eps])
        s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
        assert abs(s.data[0] - s.data[1]) < 1e-6

    def test_derivative_continuous_at_boundaries(self):
        # C1 continuity: finite-difference slope across each boundary
        def slope(r0, h=1e-5):
            r = Tensor([r0 - h, r0 + h])
            s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
            return (s.data[1] - s.data[0]) / (2 * h)

        inner_slope = slope(3.0 - 1e-4)
        outer_slope = slope(3.0 + 1e-4)
        assert abs(inner_slope - outer_slope) < 1e-2
        assert abs(slope(6.0 - 1e-4)) < 1e-2  # flattens to zero

    def test_monotone_decreasing_in_switch_region(self):
        rs = np.linspace(3.01, 5.99, 50)
        s = smooth_switch(Tensor(rs), rcut=6.0, rcut_smth=3.0).data
        assert np.all(np.diff(s) < 0)

    def test_differentiable(self):
        r = Tensor([2.0, 4.0, 5.5], requires_grad=True)
        s = smooth_switch(r, rcut=6.0, rcut_smth=3.0)
        s.sum().backward()
        assert r.grad is not None
        assert np.isfinite(r.grad).all()

    def test_padded_zero_entries_yield_zero(self):
        r = Tensor([0.0, 2.0])
        s = smooth_switch(r, rcut=6.0, rcut_smth=1.0)
        assert s.data[0] == 0.0

    def test_invalid_radii_raise(self):
        with pytest.raises(ConfigurationError):
            smooth_switch(Tensor([1.0]), rcut=2.0, rcut_smth=3.0)


class TestDescriptorConfig:
    def test_valid(self):
        DescriptorConfig(rcut=6.0, rcut_smth=2.0)

    @pytest.mark.parametrize(
        "rcut,rcut_smth",
        [(0.0, 0.0), (-1.0, 0.5), (2.0, 3.0), (2.0, 2.0)],
    )
    def test_invalid(self, rcut, rcut_smth):
        with pytest.raises(ConfigurationError):
            DescriptorConfig(rcut=rcut, rcut_smth=rcut_smth)


class TestEnvironmentMatrix:
    def test_shapes(self):
        desc = SmoothDescriptor(DescriptorConfig(rcut=5.0, rcut_smth=2.0))
        disp = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4, 3)))
        mask = np.ones((2, 3, 4))
        env, s = desc.environment_matrix(disp, mask)
        assert env.shape == (2, 3, 4, 4)
        assert s.shape == (2, 3, 4)

    def test_masked_rows_zero(self):
        desc = SmoothDescriptor(DescriptorConfig(rcut=5.0, rcut_smth=2.0))
        disp = Tensor(np.ones((1, 1, 2, 3)))
        mask = np.array([[[1.0, 0.0]]])
        env, s = desc.environment_matrix(disp, mask)
        assert np.allclose(env.data[0, 0, 1], 0.0)
        assert s.data[0, 0, 1] == 0.0

    def test_first_channel_is_switch_value(self):
        desc = SmoothDescriptor(DescriptorConfig(rcut=6.0, rcut_smth=3.0))
        d = np.zeros((1, 1, 1, 3))
        d[0, 0, 0] = [2.0, 0.0, 0.0]
        env, s = desc.environment_matrix(Tensor(d), np.ones((1, 1, 1)))
        assert np.isclose(env.data[0, 0, 0, 0], 0.5)  # s = 1/r
        assert np.isclose(env.data[0, 0, 0, 1], 0.5)  # s * x/r = s

    def test_rotation_covariance_of_scalar_channel(self):
        """s(r) depends only on distance, so rotating displacements
        leaves the first channel unchanged."""
        desc = SmoothDescriptor(DescriptorConfig(rcut=6.0, rcut_smth=2.0))
        rng = np.random.default_rng(1)
        d = rng.normal(size=(1, 2, 3, 3))
        mask = np.ones((1, 2, 3))
        # random rotation via QR
        Q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        env1, s1 = desc.environment_matrix(Tensor(d), mask)
        env2, s2 = desc.environment_matrix(Tensor(d @ Q.T), mask)
        assert np.allclose(s1.data, s2.data, atol=1e-12)


class TestPrepareBatches:
    def test_batch_shapes(self, small_dataset):
        batches = prepare_batches(
            small_dataset.train[:6], rcut=4.0, batch_size=3
        )
        assert len(batches) == 2
        b = batches[0]
        assert b.n_frames == 3
        assert b.n_atoms == 20
        assert b.displacements.shape == (
            3,
            20,
            b.max_neighbors,
            3,
        )

    def test_common_pad_width_across_batches(self, small_dataset):
        batches = prepare_batches(
            small_dataset.train[:6], rcut=4.0, batch_size=2
        )
        widths = {b.max_neighbors for b in batches}
        assert len(widths) == 1

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError):
            prepare_batches([], rcut=4.0)

    def test_bad_batch_size_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            prepare_batches(small_dataset.train[:2], rcut=4.0, batch_size=0)


@pytest.fixture(scope="module")
def tiny_model_and_batch(small_dataset):
    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=4.0, rcut_smth=1.5),
        embedding_widths=(4, 8),
        axis_neurons=3,
        fitting_widths=(8,),
    )
    model = DeepPotModel(config, rng=0)
    batch = prepare_batches(small_dataset.train[:2], rcut=4.0, batch_size=2)[0]
    return model, batch


class TestDeepPotModel:
    def test_invalid_activation_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(desc_activation="gelu")

    def test_axis_neurons_bounded(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(embedding_widths=(4,), axis_neurons=8)

    def test_energy_shape(self, tiny_model_and_batch):
        model, batch = tiny_model_and_batch
        e = model.energy(batch)
        assert e.shape == (batch.n_frames,)

    def test_energy_and_forces_shapes(self, tiny_model_and_batch):
        model, batch = tiny_model_and_batch
        e, f = model.energy_and_forces(batch)
        assert e.shape == (batch.n_frames,)
        assert f.shape == (batch.n_frames, batch.n_atoms, 3)

    def test_forces_sum_to_zero(self, tiny_model_and_batch):
        """Translation invariance: internal forces cancel."""
        model, batch = tiny_model_and_batch
        _, f = model.energy_and_forces(batch)
        assert np.allclose(f.data.sum(axis=1), 0.0, atol=1e-9)

    def test_forces_match_finite_difference(self, small_dataset):
        from repro.md.dataset import Frame

        frame = small_dataset.train[0]
        config = ModelConfig(
            descriptor=DescriptorConfig(rcut=4.0, rcut_smth=1.5),
            embedding_widths=(4, 8),
            axis_neurons=3,
            fitting_widths=(8,),
        )
        model = DeepPotModel(config, rng=0)

        def energy_at(positions):
            f2 = Frame(
                positions=positions,
                species=frame.species,
                energy=0.0,
                forces=frame.forces,
                box=frame.box,
            )
            b = prepare_batches([f2], rcut=4.0, batch_size=1)[0]
            return float(model.energy(b).data[0])

        batch = prepare_batches([frame], rcut=4.0, batch_size=1)[0]
        _, forces = model.energy_and_forces(batch)
        eps = 1e-5
        for atom in (0, 7):
            for k in range(3):
                p = frame.positions.copy()
                p[atom, k] += eps
                ep = energy_at(p)
                p[atom, k] -= 2 * eps
                em = energy_at(p)
                num = -(ep - em) / (2 * eps)
                assert np.isclose(
                    forces.data[0, atom, k], num, rtol=1e-4, atol=1e-8
                )

    def test_energy_bias_shifts_total(self, tiny_model_and_batch):
        model, batch = tiny_model_and_batch
        e0 = model.energy(batch).data.copy()
        old_bias = model.energy_bias_per_atom
        model.energy_bias_per_atom = old_bias + 1.0
        e1 = model.energy(batch).data
        model.energy_bias_per_atom = old_bias
        assert np.allclose(e1 - e0, batch.n_atoms)

    def test_state_dict_roundtrip(self, tiny_model_and_batch):
        model, batch = tiny_model_and_batch
        state = model.state_dict()
        e0 = model.energy(batch).data.copy()
        # perturb, then restore
        for p in model.parameters:
            p.data += 0.1
        model.load_state_dict(state)
        assert np.allclose(model.energy(batch).data, e0)

    def test_load_state_dict_shape_mismatch(self, tiny_model_and_batch):
        model, _ = tiny_model_and_batch
        state = model.state_dict()
        state["param_0"] = np.zeros((1, 1))
        with pytest.raises(ConfigurationError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_deterministic_construction(self):
        c = ModelConfig(embedding_widths=(4,), axis_neurons=2)
        m1 = DeepPotModel(c, rng=3)
        m2 = DeepPotModel(c, rng=3)
        assert np.array_equal(
            m1.parameters[0].data, m2.parameters[0].data
        )


class TestTrainer:
    def _config(self, **over):
        defaults = dict(
            numb_steps=20,
            batch_size=2,
            disp_freq=10,
            start_lr=3e-3,
            stop_lr=1e-4,
        )
        defaults.update(over)
        return TrainingConfig(**defaults)

    def _model(self):
        return DeepPotModel(
            ModelConfig(
                descriptor=DescriptorConfig(rcut=4.0, rcut_smth=1.5),
                embedding_widths=(4, 8),
                axis_neurons=3,
                fitting_widths=(8,),
            ),
            rng=0,
        )

    def test_training_reduces_force_loss(self, small_dataset):
        # the prefactor schedule makes early training force-led, so the
        # force RMSE is the objective guaranteed to improve in a short run
        model = self._model()
        trainer = Trainer(
            model, small_dataset, self._config(numb_steps=150), rng=1
        )
        e0, f0 = trainer.evaluate_validation()
        result = trainer.train()
        assert result.rmse_f_val < f0

    def test_lcurve_rows_written(self, small_dataset):
        model = self._model()
        result = Trainer(model, small_dataset, self._config(), rng=1).train()
        steps = result.lcurve.column("step")
        assert steps[0] == 1
        assert steps[-1] == 20

    def test_fitness_is_two_element(self, small_dataset):
        model = self._model()
        result = Trainer(model, small_dataset, self._config(), rng=1).train()
        assert result.fitness.shape == (2,)

    def test_timeout_raises(self, small_dataset):
        model = self._model()
        config = self._config(numb_steps=10000, time_limit=0.05)
        with pytest.raises(TrainingTimeoutError):
            Trainer(model, small_dataset, config, rng=1).train()

    def test_divergent_lr_raises(self, small_dataset):
        model = self._model()
        config = self._config(numb_steps=300, start_lr=5000.0, stop_lr=1000.0)
        with pytest.raises(TrainingDivergedError):
            Trainer(model, small_dataset, config, rng=1).train()

    def test_energy_bias_set_from_data(self, small_dataset):
        model = self._model()
        Trainer(model, small_dataset, self._config(), rng=1)
        stats = small_dataset.energy_statistics()
        assert np.isclose(model.energy_bias_per_atom, stats["per_atom_mean"])


class TestLCurve:
    def _curve(self):
        lc = LCurve()
        lc.append(100, 0.01, 0.009, 0.1, 0.09, 1e-3)
        lc.append(200, 0.005, 0.004, 0.08, 0.07, 5e-4)
        return lc

    def test_final_losses(self):
        assert self._curve().final_losses() == (0.005, 0.08)

    def test_final_losses_empty_raises(self):
        with pytest.raises(ValueError):
            LCurve().final_losses()

    def test_column(self):
        assert np.allclose(self._curve().column("rmse_f_val"), [0.1, 0.08])

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._curve().column("nope")

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "lcurve.out"
        write_lcurve(self._curve(), path)
        loaded = read_lcurve(path)
        assert len(loaded) == 2
        assert loaded.final_losses() == (0.005, 0.08)
        assert loaded.column("step").tolist() == [100.0, 200.0]

    def test_file_has_deepmd_header(self, tmp_path):
        path = tmp_path / "lcurve.out"
        write_lcurve(self._curve(), path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("#")
        assert "rmse_e_val" in header
        assert "rmse_f_val" in header


class TestInputTemplate:
    def _variables(self):
        return {
            "start_lr": 1e-3,
            "stop_lr": 1e-5,
            "rcut": 6.0,
            "rcut_smth": 2.0,
            "scale_by_worker": "none",
            "desc_activ_func": "tanh",
            "fitting_activ_func": "softplus",
            "embedding_widths": [4, 8],
            "axis_neurons": 3,
            "fitting_widths": [8, 8],
            "numb_steps": 10,
            "batch_size": 2,
            "disp_freq": 5,
            "seed": 0,
            "data_dir": "/tmp/data",
        }

    def test_render_valid_json(self):
        text = render_input_json(default_input_template(), self._variables())
        doc = json.loads(text)
        assert doc["model"]["descriptor"]["rcut"] == 6.0
        assert doc["learning_rate"]["scale_by_worker"] == "none"

    def test_missing_variable_raises(self):
        variables = self._variables()
        del variables["rcut"]
        with pytest.raises(ConfigurationError, match="undefined variable"):
            render_input_json(default_input_template(), variables)

    def test_lists_render_as_json_arrays(self):
        text = render_input_json(default_input_template(), self._variables())
        doc = json.loads(text)
        assert doc["model"]["descriptor"]["neuron"] == [4, 8]

    def test_invalid_json_detected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            render_input_json('{"a": $x,}', {"x": "}{"})

    def test_input_config_roundtrip(self):
        text = render_input_json(default_input_template(), self._variables())
        config = InputConfig.from_json(text)
        assert config.rcut == 6.0
        assert config.fitting_activ_func == "softplus"
        assert config.embedding_widths == (4, 8)
        assert config.data_dir == "/tmp/data"

    def test_input_config_missing_section(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            InputConfig.from_dict({"model": {}})

    def test_model_and_training_configs(self):
        text = render_input_json(default_input_template(), self._variables())
        config = InputConfig.from_json(text)
        mc = config.model_config()
        tc = config.training_config(time_limit=10.0)
        assert mc.descriptor.rcut == 6.0
        assert tc.numb_steps == 10
        assert tc.time_limit == 10.0
        assert tc.prefactors.pf_start == 1000.0


class TestRunner:
    def _variables(self, data_dir=""):
        v = TestInputTemplate._variables(TestInputTemplate())
        v["data_dir"] = str(data_dir)
        return v

    def test_prepare_run_directory(self, tmp_path):
        workdir = prepare_run_directory(
            tmp_path, self._variables(), run_uuid="abc-123"
        )
        assert workdir.name == "abc-123"
        assert (workdir / "input.json").exists()

    def test_run_training_inprocess(self, tmp_path, small_dataset):
        run = run_training(
            base_dir=tmp_path,
            variables=self._variables(),
            dataset=small_dataset,
            mode="inprocess",
        )
        assert (run.workdir / "lcurve.out").exists()
        assert (run.workdir / "model.npz").exists()
        assert np.isfinite(run.rmse_e_val)
        assert np.isfinite(run.rmse_f_val)

    def test_run_training_uuid_names_directory(self, tmp_path, small_dataset):
        run = run_training(
            base_dir=tmp_path,
            variables=self._variables(),
            dataset=small_dataset,
            run_uuid="my-uuid",
        )
        assert run.workdir.name == "my-uuid"

    def test_unknown_mode_raises(self, tmp_path, small_dataset):
        workdir = prepare_run_directory(tmp_path, self._variables())
        with pytest.raises(ValueError, match="unknown execution mode"):
            execute_training(workdir, dataset=small_dataset, mode="mpi")

    @pytest.mark.slow
    def test_run_training_subprocess(self, tmp_path, small_dataset):
        data_dir = tmp_path / "data"
        small_dataset.save(data_dir)
        run = run_training(
            base_dir=tmp_path,
            variables=self._variables(data_dir=data_dir),
            mode="subprocess",
            time_limit=300.0,
        )
        assert np.isfinite(run.rmse_f_val)

    @pytest.mark.slow
    def test_cli_train_and_gen_data(self, tmp_path):
        data_dir = tmp_path / "data"
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.deepmd.cli",
                "gen-data",
                str(data_dir),
                "--frames",
                "12",
                "--seed",
                "3",
            ],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        workdir = prepare_run_directory(
            tmp_path, self._variables(data_dir=data_dir)
        )
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.deepmd.cli",
                "train",
                str(workdir / "input.json"),
            ],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "rmse_f_val" in out.stdout
        assert (workdir / "lcurve.out").exists()

"""Tests for the shared plumbing: RNG handling, the LEAP-style context,
exceptions, and the high-level MD simulation driver."""

import numpy as np
import pytest

from repro.context import Context, context as global_context
from repro.exceptions import (
    EvaluationError,
    ReproError,
    TrainingTimeoutError,
    WorkerFailure,
)
from repro.md.simulation import MDSimulation
from repro.md.system import molten_salt_potential, molten_salt_system
from repro.rng import (
    ensure_rng,
    seeds_for_runs,
    shuffled_indices,
    spawn,
    split_indices,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnAndSeeds:
    def test_spawn_children_independent(self):
        children = spawn(0, 3)
        streams = [c.random(100) for c in children]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])

    def test_seeds_for_runs_deterministic(self):
        assert seeds_for_runs(5, 4) == seeds_for_runs(5, 4)

    def test_seeds_for_runs_distinct(self):
        seeds = seeds_for_runs(5, 10)
        assert len(set(seeds)) == 10

    def test_different_base_different_seeds(self):
        assert seeds_for_runs(1, 3) != seeds_for_runs(2, 3)


class TestSplitIndices:
    def test_partition_complete(self):
        parts = split_indices(100, [0.25], rng=0)
        assert len(parts) == 2
        assert len(parts[0]) == 25
        assert len(parts[1]) == 75
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(100))

    def test_fractions_summing_to_one(self):
        parts = split_indices(10, [0.5, 0.5], rng=0)
        assert len(parts) == 2
        assert len(parts[0]) + len(parts[1]) == 10

    def test_oversubscribed_fractions_raise(self):
        with pytest.raises(ValueError):
            split_indices(10, [0.8, 0.5])

    def test_negative_fraction_raises(self):
        with pytest.raises(ValueError):
            split_indices(10, [-0.1])

    def test_shuffled(self):
        parts = split_indices(50, [0.5], rng=0)
        assert not np.array_equal(parts[0], np.arange(25))

    def test_shuffled_indices_is_permutation(self):
        idx = shuffled_indices(20, rng=1)
        assert np.array_equal(np.sort(idx), np.arange(20))


class TestContext:
    def test_mapping_interface(self):
        ctx = Context(a=1)
        ctx["b"] = 2
        assert ctx["a"] == 1
        assert len(ctx) == 2
        assert set(iter(ctx)) == {"a", "b"}
        del ctx["a"]
        assert "a" not in ctx

    def test_snapshot_restore(self):
        ctx = Context(std=1.0)
        snap = ctx.snapshot()
        ctx["std"] = 0.5
        ctx.restore(snap)
        assert ctx["std"] == 1.0

    def test_reset(self):
        ctx = Context(x=1)
        ctx.reset()
        assert len(ctx) == 0

    def test_module_level_context_exists(self):
        assert isinstance(global_context, Context)

    def test_instances_isolated(self):
        a, b = Context(), Context()
        a["k"] = 1
        assert "k" not in b


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(TrainingTimeoutError, EvaluationError)
        assert issubclass(EvaluationError, ReproError)
        assert issubclass(WorkerFailure, ReproError)

    def test_timeout_carries_values(self):
        exc = TrainingTimeoutError(elapsed=130.0, limit=120.0)
        assert exc.elapsed == 130.0
        assert exc.limit == 120.0
        assert "130.0" in str(exc)

    def test_worker_failure_message(self):
        exc = WorkerFailure("node-007", "died")
        assert exc.worker == "node-007"
        assert "node-007" in str(exc)


class TestMDSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        system = molten_salt_system(4, 2, rng=0)
        potential = molten_salt_potential(
            cutoff=0.99 * system.cell.max_cutoff()
        )
        return MDSimulation(
            system, potential, temperature=498.0, dt=2.0, rng=1
        )

    def test_equilibrate_advances_state(self, sim):
        before = sim.system.positions.copy()
        sim.equilibrate(20)
        assert not np.allclose(before, sim.system.positions)

    def test_sample_trajectory_count_and_shape(self, sim):
        traj = sim.sample_trajectory(n_frames=5, sample_interval=4)
        assert len(traj) == 5
        frame = traj[0]
        assert frame.positions.shape == (20, 3)
        assert frame.forces.shape == (20, 3)
        assert np.isfinite(frame.energy)

    def test_observables_recorded(self, sim):
        n_before = len(sim.observables.potential_energy)
        sim.sample_trajectory(n_frames=2, sample_interval=3)
        obs = sim.observables.as_arrays()
        assert len(obs["potential_energy"]) == n_before + 6
        assert len(obs["temperature"]) == len(obs["potential_energy"])
        assert np.all(obs["temperature"] > 0.0)

    def test_frames_carry_wrapped_positions(self, sim):
        traj = sim.sample_trajectory(n_frames=2, sample_interval=2)
        L = sim.system.cell.lengths
        for frame in traj:
            assert np.all(frame.positions >= 0.0)
            assert np.all(frame.positions < L + 1e-9)

"""The multi-tenant campaign service.

Three layers under test, mirroring the package:

* the :class:`FairShareScheduler` driven deterministically by hand
  (no dispatcher thread) against a manually-resolved fake backend —
  quotas, stride weights, strict priority, round-robin, failure paths;
* the in-process :class:`CampaignService` over real surrogate
  campaigns — fronts bit-identical to solo runs, cross-campaign cache
  sharing with exactly-once execution, cancel / graceful-shutdown /
  restart-recovery lifecycles;
* the HTTP plane (:class:`CampaignServer` + :class:`ServiceClient`).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.chaos import InvariantChecker
from repro.exceptions import CampaignCancelled, ServiceError, ServiceShutdown
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.obs import MetricsRegistry, get_registry
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RESUMABLE_STATES,
    RUNNING,
    TERMINAL_STATES,
    CampaignRegistry,
    CampaignServer,
    CampaignService,
    FairShareScheduler,
    ServiceClient,
    Tenant,
    tenant_from_spec,
    worker_capacity,
)
from repro.service.service import _front_doc
from repro.store.journal import journal_path


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
class ManualFuture:
    """A backend future the test resolves by hand."""

    def __init__(self, tag):
        self.tag = tag
        self._done = False
        self._result = None
        self._exception = None

    def done(self):
        return self._done

    def result(self, timeout=None):
        if self._exception is not None:
            raise self._exception
        return self._result

    def finish(self, result="ok"):
        self._result = result
        self._done = True

    def fail(self, exc):
        self._exception = exc
        self._done = True


class ManualBackend:
    """Records submissions; nothing completes until the test says so."""

    is_execution_backend = True

    def __init__(self):
        self.futures = []
        self.submitted = []
        self.cache_hits = 0

    def submit(self, individual):
        future = ManualFuture(individual)
        self.futures.append(future)
        self.submitted.append(individual)
        return future

    def on_cache_hit(self, individual):
        self.cache_hits += 1


def _scheduler(backend=None, **kwargs):
    """An unstarted scheduler over a fresh metrics registry, so tests
    drive tick() deterministically without thread interleaving."""
    backend = backend if backend is not None else ManualBackend()
    kwargs.setdefault("metrics", MetricsRegistry())
    return FairShareScheduler(backend, **kwargs), backend


def _spec(name, seed=5, tenant=None, pop=8, gens=2, runs=1, **extra):
    return {
        "name": name,
        "tenant": tenant,
        "config": {
            "n_runs": runs,
            "pop_size": pop,
            "generations": gens,
            "base_seed": seed,
        },
        "problem": {"backend": "surrogate"},
        **extra,
    }


def _solo_front(seed=5, pop=8, gens=2, runs=1):
    result = Campaign(
        lambda s: SurrogateDeepMDProblem(seed=s),
        config=CampaignConfig(
            n_runs=runs, pop_size=pop, generations=gens, base_seed=seed
        ),
    ).run()
    return _front_doc(result)["front"]


def _wait_for(predicate, timeout=60.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def _wait_generation(campaign, minimum=1, timeout=60.0):
    """Block until the campaign has journaled ``minimum`` generations —
    the clean window for cancel/shutdown-while-running tests."""
    _wait_for(
        lambda: campaign.status is not None
        and (campaign.status.snapshot().get("generation") or 0) >= minimum,
        timeout=timeout,
        message=f"campaign {campaign.id} to reach generation {minimum}",
    )


# a campaign big enough that cancel/shutdown lands mid-flight
LONG = {"pop": 30, "gens": 6, "runs": 2}


# ----------------------------------------------------------------------
# tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    def test_defaults(self):
        tenant = tenant_from_spec(None)
        assert tenant == Tenant()
        assert tenant.name == "default"
        assert tenant.weight == 1.0
        assert tenant.max_in_flight == 4
        assert tenant.priority == 0

    def test_bare_name_and_doc_roundtrip(self):
        tenant = tenant_from_spec("alice")
        assert tenant.name == "alice"
        assert tenant_from_spec(tenant.as_doc()) == tenant

    def test_full_object(self):
        tenant = tenant_from_spec(
            {"name": "bob", "weight": 2.5, "max_in_flight": 7, "priority": 1}
        )
        assert (tenant.weight, tenant.max_in_flight, tenant.priority) == (
            2.5,
            7,
            1,
        )

    @pytest.mark.parametrize(
        "bad",
        [
            {"weight": 0},
            {"weight": -1.0},
            {"max_in_flight": 0},
            {"name": ""},
            {"quota": 3},  # unknown key must be loud
            {"weight": "heavy"},
            42,
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ServiceError):
            tenant_from_spec(bad)

    def test_worker_capacity_probes(self):
        class Pool:
            n_workers = 3

        class Wrapped:
            client = Pool()

        assert worker_capacity(Pool()) == 3
        assert worker_capacity(Wrapped()) == 3
        assert worker_capacity(object(), default=6) == 6


# ----------------------------------------------------------------------
# fair-share scheduler, driven by hand
# ----------------------------------------------------------------------
class TestFairShareScheduler:
    def test_fleet_cap_then_backfill(self):
        scheduler, backend = _scheduler(total_slots=4)
        queue = scheduler.register("c1", Tenant(max_in_flight=16))
        futures = [queue.submit(f"t{i}") for i in range(10)]
        assert scheduler.tick() == 4
        assert len(backend.submitted) == 4
        assert scheduler.tick() == 0  # fleet full, nothing moves
        backend.futures[0].finish("r0")
        backend.futures[1].finish("r1")
        assert scheduler.tick() == 2  # two drained -> two dispatched
        assert len(backend.submitted) == 6
        assert futures[0].done() and futures[0].result(0) == "r0"
        assert not futures[5].done()

    def test_tenant_quota_never_exceeded(self):
        scheduler, backend = _scheduler(total_slots=8)
        queue = scheduler.register("c1", Tenant(name="t", max_in_flight=2))
        [queue.submit(i) for i in range(6)]
        scheduler.tick()
        assert len(backend.submitted) == 2
        for future in backend.futures[:2]:
            future.finish()
        scheduler.tick()
        assert len(backend.submitted) == 4
        snap = scheduler.snapshot()
        assert snap["tenants"]["t"]["peak_in_flight"] == 2

    def test_stride_weights_are_proportional(self):
        scheduler, backend = _scheduler(total_slots=1)
        alice = scheduler.register("a", Tenant(name="alice", weight=2.0))
        bob = scheduler.register("b", Tenant(name="bob", weight=1.0))
        [alice.submit(f"a{i}") for i in range(10)]
        [bob.submit(f"b{i}") for i in range(10)]
        for _ in range(9):
            scheduler.tick()
            backend.futures[-1].finish()
        # stride scheduling: exactly 2:1 over any window, not just in
        # expectation — and deterministically interleaved, not bursty
        first_nine = [tag[0] for tag in backend.submitted[:9]]
        assert first_nine == list("abaabaaba")

    def test_strict_priority_preempts_weights(self):
        scheduler, backend = _scheduler(total_slots=1)
        urgent = scheduler.register(
            "u", Tenant(name="urgent", weight=1.0, priority=0)
        )
        batch = scheduler.register(
            "b", Tenant(name="batch", weight=100.0, priority=1)
        )
        [batch.submit(f"b{i}") for i in range(3)]
        [urgent.submit(f"u{i}") for i in range(3)]
        for _ in range(6):
            scheduler.tick()
            backend.futures[-1].finish()
        # all priority-0 work dispatched before any priority-1, no
        # matter the weights or arrival order
        assert backend.submitted == ["u0", "u1", "u2", "b0", "b1", "b2"]

    def test_round_robin_among_tenants_campaigns(self):
        scheduler, backend = _scheduler(total_slots=4)
        tenant = Tenant(name="t", max_in_flight=8)
        q1 = scheduler.register("c1", tenant)
        q2 = scheduler.register("c2", tenant)
        [q1.submit(f"c1-{i}") for i in range(2)]
        [q2.submit(f"c2-{i}") for i in range(2)]
        scheduler.tick()
        assert backend.submitted == ["c1-0", "c2-0", "c1-1", "c2-1"]

    def test_unregister_fails_pending_and_closes_queue(self):
        scheduler, _ = _scheduler(total_slots=1)
        queue = scheduler.register("c1", Tenant())
        kept = queue.submit("runs")
        scheduler.tick()
        stranded = queue.submit("stranded")
        scheduler.unregister(queue)
        with pytest.raises(ServiceError, match="unregistered"):
            stranded.result(timeout=1)
        with pytest.raises(ServiceError, match="closed"):
            queue.submit("late")
        assert not kept.done()  # in-flight work keeps draining

    def test_backend_submit_exception_resolves_future(self):
        class ExplodingBackend(ManualBackend):
            def submit(self, individual):
                raise RuntimeError("fleet on fire")

        scheduler, _ = _scheduler(ExplodingBackend())
        queue = scheduler.register("c1", Tenant())
        future = queue.submit("x")
        scheduler.tick()
        with pytest.raises(RuntimeError, match="fleet on fire"):
            future.result(timeout=1)
        snap = scheduler.snapshot()
        assert snap["in_flight"] == 0
        assert snap["tenants"]["default"]["in_flight"] == 0

    def test_backend_future_exception_propagates(self):
        scheduler, backend = _scheduler()
        queue = scheduler.register("c1", Tenant())
        future = queue.submit("x")
        scheduler.tick()
        backend.futures[0].fail(ValueError("bad phenome"))
        scheduler.tick()
        with pytest.raises(ValueError, match="bad phenome"):
            future.result(timeout=1)

    def test_validate_tenant_rejects_conflicting_knobs(self):
        scheduler, _ = _scheduler()
        scheduler.register("c1", Tenant(name="alice", weight=2.0))
        # identical spec is idempotent
        scheduler.validate_tenant(Tenant(name="alice", weight=2.0))
        scheduler.register("c2", Tenant(name="alice", weight=2.0))
        with pytest.raises(ServiceError, match="conflicting"):
            scheduler.validate_tenant(Tenant(name="alice"))
        with pytest.raises(ServiceError, match="conflicting"):
            scheduler.register("c3", Tenant(name="alice", weight=3.0))

    def test_total_slots_defaults_to_backend_workers(self):
        class Pool(ManualBackend):
            n_workers = 3

        scheduler, _ = _scheduler(Pool())
        assert scheduler.total_slots == 3
        with pytest.raises(ServiceError, match="total_slots"):
            _scheduler(total_slots=0)

    def test_stopped_scheduler_rejects_work(self):
        scheduler, _ = _scheduler()
        queue = scheduler.register("c1", Tenant())
        scheduler.stop(drain=False)
        with pytest.raises(ServiceError):
            queue.submit("x")
        with pytest.raises(ServiceError, match="stopped"):
            scheduler.register("c2", Tenant(name="late"))

    def test_started_scheduler_drains_on_stop(self):
        class InstantBackend(ManualBackend):
            def submit(self, individual):
                future = ManualFuture(individual)
                future.finish(f"done-{individual}")
                self.submitted.append(individual)
                return future

        scheduler, backend = _scheduler(InstantBackend())
        scheduler.start()
        queue = scheduler.register("c1", Tenant())
        futures = [queue.submit(i) for i in range(8)]
        assert scheduler.wait_idle(timeout=10)
        scheduler.stop(drain=True, timeout=10)
        assert [f.result(0) for f in futures] == [
            f"done-{i}" for i in range(8)
        ]
        assert len(backend.submitted) == 8

    def test_snapshot_and_labeled_metrics(self):
        registry = MetricsRegistry()
        scheduler, _ = _scheduler(metrics=registry, total_slots=2)
        queue = scheduler.register("c1", Tenant(name="alice"))
        [queue.submit(i) for i in range(3)]
        scheduler.tick()
        snap = scheduler.snapshot()
        assert snap["total_slots"] == 2
        assert snap["in_flight"] == 2
        assert snap["queues"]["c1"] == {
            "tenant": "alice",
            "pending": 1,
            "in_flight": 2,
            "submitted": 3,
            "completed": 0,
            "cache_hits": 0,
        }
        series = registry.snapshot()
        assert series['service_queue_depth{campaign_id="c1"}'] == 1
        assert series['service_campaign_in_flight{campaign_id="c1"}'] == 2
        assert series['service_tenant_in_flight{tenant="alice"}'] == 2

    def test_cache_hit_accounting_forwards_to_backend(self):
        scheduler, backend = _scheduler()
        queue = scheduler.register("c1", Tenant())
        queue.on_cache_hit(None)
        queue.on_cache_hit(None)
        assert queue.stats()["cache_hits"] == 2
        assert backend.cache_hits == 2


# ----------------------------------------------------------------------
# durable registry
# ----------------------------------------------------------------------
class TestCampaignRegistry:
    def test_create_persists_and_reloads(self, tmp_path):
        registry = CampaignRegistry(tmp_path)
        campaign = registry.create(
            _spec("exp", tenant={"name": "alice", "weight": 2.0})
        )
        assert campaign.state == QUEUED
        assert (campaign.directory / "spec.json").exists()
        reloaded = CampaignRegistry(tmp_path).load_persisted()
        assert len(reloaded) == 1
        twin = reloaded[0]
        assert twin.id == campaign.id
        assert twin.tenant == campaign.tenant
        assert twin.config == campaign.config
        assert twin.problem_spec == {"backend": "surrogate"}

    @pytest.mark.parametrize(
        "bad",
        [
            "not an object",
            {"bogus": 1},
            {"config": {"generation": 3}},  # typo'd field, not silent
            {"config": {"mode": "chaotic"}},
            {"problem": "surrogate"},
        ],
    )
    def test_create_rejects_malformed_submissions(self, tmp_path, bad):
        with pytest.raises(ServiceError):
            CampaignRegistry(tmp_path).create(bad)

    def test_duplicate_id_rejected(self, tmp_path):
        registry = CampaignRegistry(tmp_path)
        registry.create(_spec("a", id="dup"))
        with pytest.raises(ServiceError, match="dup"):
            registry.create(_spec("b", id="dup"))

    def test_first_terminal_state_wins(self, tmp_path):
        registry = CampaignRegistry(tmp_path)
        campaign = registry.create(_spec("a"))
        registry.set_state(campaign, CANCELLED)
        registry.set_state(campaign, DONE)  # racing transition: ignored
        assert campaign.state == CANCELLED
        state = json.loads(
            (campaign.directory / "state.json").read_text()
        )
        assert state["state"] == CANCELLED

    def test_state_partitions_are_disjoint(self):
        assert not (RESUMABLE_STATES & TERMINAL_STATES)
        assert QUEUED in RESUMABLE_STATES
        assert INTERRUPTED in RESUMABLE_STATES
        assert DONE in TERMINAL_STATES


# ----------------------------------------------------------------------
# the in-process service over real surrogate campaigns
# ----------------------------------------------------------------------
class TestCampaignService:
    def test_concurrent_campaigns_bit_identical_to_solo(self, tmp_path):
        svc = CampaignService(tmp_path)
        try:
            a = svc.submit(
                _spec(
                    "a",
                    tenant={"name": "alice", "weight": 2.0, "max_in_flight": 3},
                )
            )
            b = svc.submit(
                _spec("b", tenant={"name": "bob", "max_in_flight": 2})
            )
            assert svc.wait(timeout=120)
            assert (a.state, b.state) == (DONE, DONE)
            solo = _solo_front()
            assert svc.front(a.id)["front"] == solo
            assert svc.front(b.id)["front"] == solo
            tenants = svc.scheduler.snapshot()["tenants"]
            assert 1 <= tenants["alice"]["peak_in_flight"] <= 3
            assert 1 <= tenants["bob"]["peak_in_flight"] <= 2
        finally:
            svc.shutdown(timeout=30)

    def test_cross_campaign_cache_runs_each_phenome_once(self, tmp_path):
        counts: Counter = Counter()
        lock = threading.Lock()

        def counting_builder(problem_spec):
            def factory(seed):
                problem = SurrogateDeepMDProblem(seed=seed)
                inner = problem.evaluate

                def counted(phenome):
                    with lock:
                        counts[json.dumps(phenome, sort_keys=True)] += 1
                    return inner(phenome)

                problem.evaluate = counted
                return problem

            return factory

        svc = CampaignService(
            tmp_path, problem_factory_builder=counting_builder
        )
        try:
            a = svc.submit(_spec("first", tenant="alice"))
            assert svc.wait(timeout=120)
            assert a.state == DONE
            executed = sum(counts.values())
            assert executed == len(counts)  # each unique phenome: once
            hits_before = svc.cache.stats()["hits"]

            b = svc.submit(_spec("second", tenant="bob"))
            assert svc.wait(timeout=120)
            assert b.state == DONE
            # the identical resubmission executed NOTHING new: every
            # evaluation was served from alice's cached work
            assert sum(counts.values()) == executed
            assert svc.cache.stats()["hits"] > hits_before
            assert svc.front(b.id)["front"] == svc.front(a.id)["front"]
            # acceptance: >= 90% cache-hit on an identical resubmission
            assert b.status.snapshot()["cache_hit_rate"] >= 0.9
        finally:
            svc.shutdown(timeout=30)

    def test_cancel_running_campaign(self, tmp_path):
        svc = CampaignService(tmp_path)
        try:
            campaign = svc.submit(_spec("long", **LONG))
            _wait_generation(campaign)
            svc.cancel(campaign.id)
            assert svc.wait(timeout=60)
            assert campaign.state == CANCELLED
            assert svc.front(campaign.id)["state"] == CANCELLED
        finally:
            svc.shutdown(timeout=30)

    def test_cancel_queued_campaign_never_runs(self, tmp_path):
        svc = CampaignService(tmp_path, max_active=1)
        try:
            first = svc.submit(_spec("long", **LONG))
            _wait_for(
                lambda: first.state == RUNNING,
                timeout=30,
                message="first campaign to occupy the only slot",
            )
            queued = svc.submit(_spec("queued", **LONG))
            svc.cancel(queued.id)
            _wait_for(
                lambda: queued.state == CANCELLED,
                timeout=30,
                message="queued campaign to cancel",
            )
            assert queued.status is None  # never acquired a slot
            svc.cancel(first.id)
            assert svc.wait(timeout=60)
        finally:
            svc.shutdown(timeout=30)

    def test_shutdown_interrupts_then_recovery_is_bit_identical(
        self, tmp_path
    ):
        seed = 7
        svc = CampaignService(tmp_path)
        campaign = svc.submit(_spec("interruptible", seed=seed, **LONG))
        _wait_generation(campaign)
        svc.shutdown(timeout=60)
        assert campaign.state == INTERRUPTED
        journal = journal_path(campaign.directory)
        assert journal.exists()
        report = InvariantChecker(
            journal=journal, cache_dir=tmp_path / "cache"
        ).check()
        assert report.ok, report.summary()

        revived = CampaignService(tmp_path)
        try:
            recovered = revived.recover()
            assert [c.id for c in recovered] == [campaign.id]
            assert revived.wait(timeout=180)
            resumed = revived.get(campaign.id)
            assert resumed.state == DONE
            assert revived.front(campaign.id)["front"] == _solo_front(
                seed=seed, **LONG
            )
        finally:
            revived.shutdown(timeout=30)

    def test_conflicting_tenant_rejected_at_submit(self, tmp_path):
        svc = CampaignService(tmp_path)
        try:
            svc.submit(_spec("a", tenant={"name": "t", "weight": 2.0}))
            with pytest.raises(ServiceError, match="conflicting"):
                svc.submit(_spec("b", tenant="t"))
            assert len(svc.list()) == 1  # rejected before registration
            assert svc.wait(timeout=120)
        finally:
            svc.shutdown(timeout=30)

    def test_snapshot_is_the_multi_campaign_status_body(self, tmp_path):
        svc = CampaignService(tmp_path, max_active=2)
        try:
            campaign = svc.submit(_spec("snap", tenant="alice"))
            assert svc.wait(timeout=120)
            snap = svc.snapshot()
            assert snap["state"] == "serving"
            service = snap["service"]
            rows = {c["id"]: c for c in service["campaigns"]}
            assert rows[campaign.id]["state"] == DONE
            assert rows[campaign.id]["tenant"] == "alice"
            assert rows[campaign.id]["front_size"] > 0
            assert service["scheduler"]["total_slots"] >= 1
            assert service["cache"]["entries"] > 0
            assert service["max_active"] == 2
            prom = get_registry().to_prometheus()
            assert f'service_queue_depth{{campaign_id="{campaign.id}"}}' in prom
        finally:
            svc.shutdown(timeout=30)
        assert svc.snapshot()["state"] == "shutting-down"
        with pytest.raises(ServiceError, match="shutting down"):
            svc.submit(_spec("late"))

    def test_failed_campaign_isolates_and_reports(self, tmp_path):
        def broken_builder(problem_spec):
            raise RuntimeError("no such problem backend")

        svc = CampaignService(
            tmp_path, problem_factory_builder=broken_builder
        )
        try:
            bad = svc.submit(_spec("bad"))
            _wait_for(
                lambda: bad.state in TERMINAL_STATES,
                timeout=30,
                message="broken campaign to fail",
            )
            assert bad.state == FAILED
            assert "no such problem backend" in bad.error
        finally:
            svc.shutdown(timeout=30)


# ----------------------------------------------------------------------
# the HTTP plane
# ----------------------------------------------------------------------
class TestCampaignServerHTTP:
    def _serve(self, tmp_path, **kwargs):
        svc = CampaignService(tmp_path, **kwargs)
        server = CampaignServer(svc, port=0).start()
        return svc, server, ServiceClient(server.url, timeout=10)

    def _poll_done(self, client, campaign_id, timeout=120.0):
        _wait_for(
            lambda: client.campaign(campaign_id)["state"]
            in TERMINAL_STATES | {INTERRUPTED},
            timeout=timeout,
            message=f"campaign {campaign_id} over HTTP",
        )
        return client.campaign(campaign_id)

    def test_submit_poll_front_roundtrip(self, tmp_path):
        svc, server, client = self._serve(tmp_path)
        try:
            a = client.submit(_spec("a", tenant="alice"))
            b = client.submit(_spec("b", tenant="bob"))  # identical work
            assert self._poll_done(client, a["id"])["state"] == DONE
            assert self._poll_done(client, b["id"])["state"] == DONE

            fronts = [client.front(c["id"])["front"] for c in (a, b)]
            assert fronts[0] and fronts[0] == fronts[1] == _solo_front()

            rows = {c["id"]: c for c in client.campaigns()}
            assert rows.keys() == {a["id"], b["id"]}
            assert all(row["state"] == DONE for row in rows.values())

            status = client.status()
            per_campaign = {
                c["id"]: c for c in status["service"]["campaigns"]
            }
            assert per_campaign[a["id"]]["tenant"] == "alice"
            assert per_campaign[b["id"]]["tenant"] == "bob"
            # identical campaigns share the cache across tenants
            assert status["service"]["cache"]["hits"] > 0

            prom = client.metrics()
            assert "service_dispatched_total" in prom
            assert f'campaign_hypervolume{{campaign_id="{a["id"]}"}}' in prom
        finally:
            server.close()
            svc.shutdown(timeout=30)

    def test_cancel_over_http(self, tmp_path):
        svc, server, client = self._serve(tmp_path)
        try:
            doc = client.submit(_spec("long", **LONG))
            client.cancel(doc["id"])
            assert self._poll_done(client, doc["id"])["state"] == CANCELLED
        finally:
            server.close()
            svc.shutdown(timeout=30)

    def test_http_error_mapping(self, tmp_path):
        svc, server, client = self._serve(tmp_path)
        try:
            with pytest.raises(ServiceError, match="404"):
                client.campaign("nope")
            with pytest.raises(ServiceError, match="404"):
                client.cancel("nope")
            with pytest.raises(ServiceError, match="400"):
                client.submit({"bogus": 1})
            with pytest.raises(ServiceError, match="400"):
                client.submit(_spec("bad", config_override=True))
            # raw non-JSON body -> 400, not a stack trace
            request = urllib.request.Request(
                f"{server.url}/campaigns",
                data=b"not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400
            status, body = 0, ""
            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10
            ) as resp:
                status, body = resp.status, resp.read().decode()
            assert status == 200 and body
            assert svc.list() == []  # nothing bad was admitted
        finally:
            server.close()
            svc.shutdown(timeout=30)

    def test_client_unreachable_raises_service_error(self):
        client = ServiceClient("127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.campaigns()


# ----------------------------------------------------------------------
# exception taxonomy
# ----------------------------------------------------------------------
class TestServiceExceptions:
    def test_hierarchy(self):
        from repro.exceptions import ReproError

        assert issubclass(ServiceError, ReproError)
        assert issubclass(CampaignCancelled, ServiceError)
        assert issubclass(ServiceShutdown, ServiceError)

"""Tests for repro.nn: activations, layers, MLP, optimizers, schedules,
and the energy/force loss with its prefactor schedule."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff.tensor import Tensor
from repro.nn import (
    ACTIVATION_NAMES,
    ACTIVATIONS,
    Adam,
    Dense,
    EnergyForceLoss,
    ExponentialDecay,
    MLP,
    PrefactorSchedule,
    ResidualDense,
    SGD,
    get_activation,
    scale_lr_by_workers,
)


class TestActivations:
    def test_registry_matches_paper_names(self):
        assert ACTIVATION_NAMES == (
            "relu",
            "relu6",
            "softplus",
            "sigmoid",
            "tanh",
        )

    def test_all_registered_callables(self):
        x = Tensor(np.linspace(-2, 2, 7))
        for name in ACTIVATION_NAMES:
            out = ACTIVATIONS[name](x)
            assert out.shape == x.shape

    def test_get_activation_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("gelu")

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 9)
        assert np.allclose(get_activation("tanh")(Tensor(x)).data, np.tanh(x))


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameters_require_grad(self):
        layer = Dense(4, 3, rng=0)
        assert all(p.requires_grad for p in layer.parameters)

    def test_n_parameters(self):
        assert Dense(4, 3, rng=0).n_parameters() == 4 * 3 + 3

    def test_activation_applied(self):
        relu = get_activation("relu")
        layer = Dense(2, 2, activation=relu, rng=0)
        out = layer(Tensor(np.full((1, 2), -100.0)))
        assert np.all(out.data >= 0.0)

    def test_deterministic_with_seed(self):
        w1 = Dense(3, 3, rng=7).weight.data
        w2 = Dense(3, 3, rng=7).weight.data
        assert np.array_equal(w1, w2)


class TestResidualDense:
    def test_same_width_adds_input(self):
        layer = ResidualDense(3, 3, rng=0)
        layer.weight.data[:] = 0.0
        x = np.arange(3.0).reshape(1, 3)
        out = layer(Tensor(x))
        assert np.allclose(out.data, x)

    def test_double_width_concatenates(self):
        layer = ResidualDense(2, 4, rng=0)
        layer.weight.data[:] = 0.0
        x = np.array([[1.0, 2.0]])
        out = layer(Tensor(x))
        assert np.allclose(out.data, [[1.0, 2.0, 1.0, 2.0]])

    def test_other_width_plain_dense(self):
        layer = ResidualDense(2, 3, rng=0)
        layer.weight.data[:] = 0.0
        out = layer(Tensor(np.array([[5.0, 5.0]])))
        assert np.allclose(out.data, 0.0)


class TestMLP:
    def test_shapes_through_network(self):
        net = MLP([4, 8, 8, 1], activation=get_activation("tanh"), rng=0)
        out = net(Tensor(np.ones((10, 4))))
        assert out.shape == (10, 1)

    def test_requires_two_widths(self):
        with pytest.raises(ValueError):
            MLP([4], activation=get_activation("tanh"))

    def test_final_activation_none_is_linear(self):
        net = MLP([2, 4, 1], activation=get_activation("relu"), rng=0)
        big = net(Tensor(np.full((1, 2), 1000.0)))
        # linear head can be negative even with relu hidden
        assert big.data.shape == (1, 1)

    def test_parameter_count(self):
        net = MLP([2, 3, 1], activation=get_activation("tanh"), rng=0)
        assert net.n_parameters() == (2 * 3 + 3) + (3 * 1 + 1)

    def test_gradients_flow_to_all_parameters(self):
        net = MLP([3, 5, 1], activation=get_activation("tanh"), rng=0)
        out = net(Tensor(np.random.default_rng(0).normal(size=(4, 3))))
        (out * out).sum().backward()
        for p in net.parameters:
            assert p.grad is not None
            assert np.any(p.grad != 0.0)


class TestOptimizers:
    def _quadratic_problem(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        return x

    def test_sgd_descends_quadratic(self):
        x = self._quadratic_problem()
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.allclose(x.data, 0.0, atol=1e-4)

    def test_sgd_momentum_converges(self):
        x = self._quadratic_problem()
        opt = SGD([x], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.allclose(x.data, 0.0, atol=1e-3)

    def test_adam_descends_quadratic(self):
        x = self._quadratic_problem()
        opt = Adam([x], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.allclose(x.data, 0.0, atol=1e-3)

    def test_adam_bias_correction_first_step(self):
        # first Adam step should be ~lr * sign(grad)
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.zero_grad()
        (x * x).sum().backward()
        opt.step()
        assert np.allclose(x.data, 10.0 - 0.1, atol=1e-6)

    def test_optimizer_rejects_constant_tensors(self):
        with pytest.raises(ValueError, match="require grad"):
            SGD([Tensor([1.0])], lr=0.1)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_step_skips_none_grads(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.step()  # no backward happened; should not raise
        assert np.allclose(x.data, [1.0])


class TestExponentialDecay:
    def test_endpoints(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=100)
        assert np.isclose(sched(0), 1e-3)
        assert np.isclose(sched(100), 1e-5)

    def test_monotone_decay(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=50)
        lrs = [sched(t) for t in range(0, 60, 5)]
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_geometric_shape(self):
        sched = ExponentialDecay(1e-2, 1e-4, total_steps=10)
        # equal step ratios
        r1 = sched(5) / sched(0)
        r2 = sched(10) / sched(5)
        assert np.isclose(r1, r2)

    def test_decay_fraction(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=100)
        assert np.isclose(sched.decay_fraction(0), 1.0)
        assert np.isclose(sched.decay_fraction(100), 1e-2)

    def test_keeps_decaying_past_total_steps(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=10)
        assert sched(20) < sched(10)

    def test_negative_step_raises(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=10)
        with pytest.raises(ValueError):
            sched(-1)

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0.0, 1e-5, total_steps=10)

    @pytest.mark.parametrize(
        "scheme,factor",
        [("linear", 6.0), ("sqrt", np.sqrt(6.0)), ("none", 1.0)],
    )
    def test_worker_scaling_schemes(self, scheme, factor):
        assert np.isclose(
            scale_lr_by_workers(1e-3, 6, scheme), 1e-3 * factor
        )

    def test_worker_scaling_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown worker scaling"):
            scale_lr_by_workers(1e-3, 6, "log")

    def test_worker_scaling_invalid_count(self):
        with pytest.raises(ValueError):
            scale_lr_by_workers(1e-3, 0, "none")

    def test_schedule_applies_worker_scaling(self):
        sched = ExponentialDecay(
            1e-3, 1e-5, total_steps=10, n_workers=6, scale_by_worker="linear"
        )
        assert np.isclose(sched(0), 6e-3)
        assert np.isclose(sched(10), 1e-5)  # stop rate is not scaled


class TestPrefactorSchedule:
    def test_paper_defaults(self):
        p = PrefactorSchedule()
        assert (p.pe_start, p.pf_start, p.pe_limit, p.pf_limit) == (
            0.02,
            1000.0,
            1.0,
            1.0,
        )

    def test_start_of_training_force_dominates(self):
        pe, pf = PrefactorSchedule().at(1.0)
        assert pf / pe > 1000.0

    def test_end_of_training_balanced(self):
        pe, pf = PrefactorSchedule().at(0.0)
        assert pe == 1.0 and pf == 1.0

    def test_interpolation_monotone(self):
        p = PrefactorSchedule()
        fs = np.linspace(1.0, 0.0, 10)
        pfs = [p.at(f)[1] for f in fs]
        pes = [p.at(f)[0] for f in fs]
        assert all(a >= b for a, b in zip(pfs, pfs[1:]))  # force decreases
        assert all(a <= b for a, b in zip(pes, pes[1:]))  # energy increases


class TestEnergyForceLoss:
    def _loss(self):
        sched = ExponentialDecay(1e-3, 1e-5, total_steps=100)
        return EnergyForceLoss(sched, n_atoms=10)

    def test_zero_when_exact(self):
        loss = self._loss()
        e = Tensor([1.0, 2.0])
        f = Tensor(np.ones((2, 10, 3)))
        val = loss(0, e, e, f, f)
        assert np.isclose(val.data, 0.0)

    def test_positive_otherwise(self):
        loss = self._loss()
        e = Tensor([1.0])
        f = Tensor(np.zeros((1, 10, 3)))
        val = loss(0, e, Tensor([2.0]), f, Tensor(np.ones((1, 10, 3))))
        assert float(val.data) > 0.0

    def test_force_term_dominates_early(self):
        loss = self._loss()
        e_err = loss(
            0,
            Tensor([1.0]),
            Tensor([0.0]),
            Tensor(np.zeros((1, 10, 3))),
            Tensor(np.zeros((1, 10, 3))),
        )
        f_err = loss(
            0,
            Tensor([0.0]),
            Tensor([0.0]),
            Tensor(np.full((1, 10, 3), 0.1)),
            Tensor(np.zeros((1, 10, 3))),
        )
        assert float(f_err.data) > float(e_err.data)

    def test_rmse_helpers(self):
        e_rmse = EnergyForceLoss.rmse_energy(
            np.array([11.0]), np.array([10.0]), n_atoms=10
        )
        assert np.isclose(e_rmse, 0.1)
        f_rmse = EnergyForceLoss.rmse_force(
            np.ones((1, 2, 3)), np.zeros((1, 2, 3))
        )
        assert np.isclose(f_rmse, 1.0)

    def test_loss_differentiable(self):
        loss = self._loss()
        e = Tensor([1.5], requires_grad=True)
        val = loss(
            0,
            e,
            Tensor([1.0]),
            Tensor(np.zeros((1, 10, 3))),
            Tensor(np.zeros((1, 10, 3))),
        )
        val.backward()
        assert e.grad is not None

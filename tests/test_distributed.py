"""Tests for the Dask-like executor: futures, scheduler, workers,
nannies, client, and fault handling."""

import threading
import time

import pytest

from repro.distributed import (
    Client,
    Future,
    LocalCluster,
    Nanny,
    NoFaults,
    RandomFaults,
    Scheduler,
    TaskState,
    Worker,
)
from repro.distributed.faults import ScriptedFaults
from repro.exceptions import SchedulerError, WorkerFailure


class TestFuture:
    def test_result_after_set(self):
        f = Future("k")
        f.set_result(42)
        assert f.result() == 42
        assert f.state is TaskState.FINISHED

    def test_result_blocks_until_set(self):
        f = Future("k")
        threading.Timer(0.05, lambda: f.set_result("done")).start()
        assert f.result(timeout=2.0) == "done"

    def test_timeout(self):
        f = Future("k")
        with pytest.raises(TimeoutError):
            f.result(timeout=0.01)

    def test_exception_reraised(self):
        f = Future("k")
        f.set_exception(ValueError("nope"))
        with pytest.raises(ValueError, match="nope"):
            f.result()

    def test_single_assignment(self):
        f = Future("k")
        f.set_result(1)
        f.set_result(2)
        assert f.result() == 1

    def test_cancel(self):
        f = Future("k")
        f.cancel()
        with pytest.raises(RuntimeError, match="cancelled"):
            f.result()

    def test_set_pending_resets_running(self):
        f = Future("k")
        f.set_running()
        assert f.state is TaskState.RUNNING
        f.set_pending()
        assert f.state is TaskState.PENDING

    def test_exception_accessor(self):
        f = Future("k")
        exc = ValueError("x")
        f.set_exception(exc)
        assert f.exception() is exc


class TestSchedulerAndWorkers:
    def test_single_worker_executes(self):
        sched = Scheduler()
        worker = Worker(sched, "w0")
        worker.start()
        try:
            fut = sched.submit(lambda: 7)
            assert fut.result(timeout=5) == 7
        finally:
            sched.close()
            worker.stop()

    def test_application_errors_propagate_without_retry(self):
        sched = Scheduler(max_retries=5)
        worker = Worker(sched, "w0")
        worker.start()
        try:

            def bad():
                raise ValueError("app bug")

            fut = sched.submit(bad)
            with pytest.raises(ValueError, match="app bug"):
                fut.result(timeout=5)
            assert sched.stats()["failed"] == 1
            assert sched.stats()["reassignments"] == 0
        finally:
            sched.close()
            worker.stop()

    def test_closed_scheduler_rejects(self):
        sched = Scheduler()
        sched.close()
        with pytest.raises(SchedulerError):
            sched.submit(lambda: 1)

    def test_worker_double_start_rejected(self):
        sched = Scheduler()
        worker = Worker(sched, "w0")
        worker.start()
        try:
            with pytest.raises(RuntimeError):
                worker.start()
        finally:
            sched.close()
            worker.stop()

    def test_task_reassigned_on_worker_death(self):
        sched = Scheduler(max_retries=2)
        # w0 dies on its first task; w1 picks it up
        faulty = Worker(sched, "w0", ScriptedFaults({("w0", 0)}))
        healthy = Worker(sched, "w1")
        faulty.start()
        # delay healthy start so the faulty one grabs the task first
        fut = sched.submit(lambda: "ok")
        time.sleep(0.15)
        healthy.start()
        try:
            assert fut.result(timeout=5) == "ok"
            assert sched.stats()["reassignments"] >= 1
        finally:
            sched.close()
            healthy.stop()

    def test_retries_exhausted_raises_worker_failure(self):
        sched = Scheduler(max_retries=1)
        # both workers die on every task
        policy = RandomFaults(rate=1.0)
        w0 = Worker(sched, "w0", policy)
        w1 = Worker(sched, "w1", policy)
        w0.start()
        w1.start()
        try:
            fut = sched.submit(lambda: 1)
            with pytest.raises(WorkerFailure):
                fut.result(timeout=5)
        finally:
            sched.close()

    def test_stats_counts(self):
        with LocalCluster(n_workers=2) as cluster:
            client = cluster.client()
            futs = client.map(lambda x: x, range(5))
            client.gather(futs)
            stats = cluster.scheduler.stats()
        assert stats["submitted"] == 5
        assert stats["completed"] == 5


class TestClientAndCluster:
    def test_map_gather_order_preserved(self):
        with LocalCluster(n_workers=4) as cluster:
            client = cluster.client()
            futs = client.map(lambda x: x * 2, range(20))
            assert client.gather(futs) == [x * 2 for x in range(20)]

    def test_submit_kwargs(self):
        with LocalCluster(n_workers=1) as cluster:
            client = cluster.client()
            fut = client.submit(lambda a, b=0: a + b, 1, b=2)
            assert fut.result(timeout=5) == 3

    def test_parallelism_actually_overlaps(self):
        with LocalCluster(n_workers=4) as cluster:
            client = cluster.client()
            t0 = time.monotonic()
            futs = client.map(lambda _: time.sleep(0.1), range(4))
            client.gather(futs)
            elapsed = time.monotonic() - t0
        assert elapsed < 0.35  # 4 x 0.1s tasks on 4 workers

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            LocalCluster(n_workers=0)

    def test_faults_do_not_lose_tasks(self):
        policy = RandomFaults(rate=0.25, max_failures=3, rng=0)
        with LocalCluster(
            n_workers=4, fault_policy=policy, max_retries=4
        ) as cluster:
            client = cluster.client()
            futs = client.map(lambda x: x + 1, range(40))
            results = client.gather(futs, timeout=20)
        assert results == [x + 1 for x in range(40)]

    def test_worker_attrition_visible(self):
        policy = RandomFaults(rate=1.0, max_failures=2, rng=0)
        with LocalCluster(n_workers=3, fault_policy=policy, max_retries=5) as cluster:
            client = cluster.client()
            client.gather(client.map(lambda x: x, range(10)), timeout=20)
            assert cluster.n_alive == 1


class TestNanny:
    def test_nanny_restarts_dead_worker(self):
        sched = Scheduler(max_retries=10)
        policy = RandomFaults(rate=1.0, max_failures=2, rng=0)
        nanny = Nanny(sched, "w0", policy, max_restarts=10)
        nanny.start()
        try:
            client = Client(sched)
            futs = client.map(lambda x: x, range(5))
            assert client.gather(futs, timeout=20) == list(range(5))
            assert nanny.restarts >= 1
        finally:
            sched.close()
            nanny.stop()

    def test_nanny_gives_up_after_max_restarts(self):
        sched = Scheduler()
        policy = RandomFaults(rate=1.0)  # dies on every task
        nanny = Nanny(sched, "w0", policy, max_restarts=2, poll_interval=0.01)
        nanny.start()
        try:
            client = Client(sched)
            fut = client.submit(lambda: 1)
            with pytest.raises(WorkerFailure):
                fut.result(timeout=10)
            deadline = time.monotonic() + 5
            while nanny.restarts < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert nanny.restarts == 2
        finally:
            sched.close()
            nanny.stop()

    def test_cluster_with_nannies(self):
        policy = RandomFaults(rate=0.3, max_failures=4, rng=1)
        with LocalCluster(
            n_workers=2, use_nannies=True, fault_policy=policy, max_retries=8
        ) as cluster:
            client = cluster.client()
            out = client.gather(
                client.map(lambda x: x * x, range(30)), timeout=30
            )
        assert out == [x * x for x in range(30)]


class TestFaultPolicies:
    def test_no_faults(self):
        assert not NoFaults().should_fail("w", 0)

    def test_random_faults_rate_zero(self):
        policy = RandomFaults(rate=0.0)
        assert not any(policy.should_fail("w", i) for i in range(100))

    def test_random_faults_rate_one(self):
        policy = RandomFaults(rate=1.0)
        assert policy.should_fail("w", 0)

    def test_max_failures_cap(self):
        policy = RandomFaults(rate=1.0, max_failures=2)
        fails = sum(policy.should_fail("w", i) for i in range(10))
        assert fails == 2

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RandomFaults(rate=1.5)

    def test_scripted(self):
        policy = ScriptedFaults({("w0", 1)})
        assert not policy.should_fail("w0", 0)
        assert policy.should_fail("w0", 1)
        assert not policy.should_fail("w1", 1)

    def test_cap_reached_stops_drawing(self):
        # once the cap is hit the policy must stay quiet even at rate=1
        policy = RandomFaults(rate=1.0, max_failures=1)
        assert policy.should_fail("w", 0)
        assert not any(policy.should_fail("w", i) for i in range(50))
        assert policy.failures == 1

    def test_zero_rate_never_counts(self):
        policy = RandomFaults(rate=0.0, max_failures=5)
        assert not any(policy.should_fail("w", i) for i in range(200))
        assert policy.failures == 0

    def test_shared_policy_thread_safety(self):
        # 8 workers hammering one capped policy: exactly max_failures
        # fire in total — the cap check, draw, and increment are one
        # critical section
        policy = RandomFaults(rate=1.0, max_failures=50, rng=0)
        hits = []
        barrier = threading.Barrier(8)

        def hammer(name):
            barrier.wait()
            count = sum(
                policy.should_fail(name, i) for i in range(100)
            )
            hits.append(count)

        threads = [
            threading.Thread(target=hammer, args=(f"w{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(hits) == 50
        assert policy.failures == 50

    def test_reset_restores_budget_and_stream(self):
        policy = RandomFaults(rate=0.5, max_failures=3, rng=42)
        first = [policy.should_fail("w", i) for i in range(40)]
        assert policy.failures == 3
        policy.reset()
        assert policy.failures == 0
        # seeded policy replays the identical failure pattern
        assert [policy.should_fail("w", i) for i in range(40)] == first


class TestRequeueAccounting:
    def test_requeued_metric_and_event(self):
        from repro.obs import Tracer

        tracer = Tracer()
        sched = Scheduler(max_retries=2, tracer=tracer)
        faulty = Worker(sched, "w0", ScriptedFaults({("w0", 0)}))
        healthy = Worker(sched, "w1")
        faulty.start()
        fut = sched.submit(lambda: "ok")
        time.sleep(0.15)
        healthy.start()
        try:
            assert fut.result(timeout=5) == "ok"
        finally:
            sched.close()
            healthy.stop()
        stats = sched.stats()
        assert stats["requeued"] == 1
        assert sched.tasks_requeued == 1
        events = tracer.events("task.requeued")
        assert len(events) == 1
        assert events[0]["tags"]["from_worker"] == "w0"
        assert events[0]["tags"]["task"] == "task-0"

    def test_requeued_in_trace_report(self):
        from repro.obs import Tracer
        from repro.obs.report import straggler_summary

        tracer = Tracer()
        sched = Scheduler(max_retries=2, tracer=tracer)
        faulty = Worker(sched, "w0", ScriptedFaults({("w0", 0)}))
        healthy = Worker(sched, "w1")
        faulty.start()
        fut = sched.submit(lambda: 1)
        time.sleep(0.15)
        healthy.start()
        try:
            fut.result(timeout=5)
        finally:
            sched.close()
            healthy.stop()
        summary = straggler_summary(tracer.records)
        assert summary["requeued"] == 1
        assert summary["retries"] == 1

"""Gradient checks for every autodiff primitive against central
differences, including broadcasting and indexing edge cases."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.gradcheck import check_gradients

RNG = np.random.default_rng(20230807)


def _vec(n=5):
    return RNG.normal(size=n)


def _mat(r=3, c=4):
    return RNG.normal(size=(r, c))


class TestArithmetic:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [_vec(), _vec()])

    def test_add_broadcast_scalar(self):
        check_gradients(lambda a, b: (a + b).sum(), [_vec(), _vec(1)])

    def test_add_broadcast_matrix_row(self):
        check_gradients(
            lambda a, b: ((a + b) ** 2.0).sum(), [_mat(3, 4), _vec(4)]
        )

    def test_sub(self):
        check_gradients(lambda a, b: ((a - b) ** 2.0).sum(), [_vec(), _vec()])

    def test_rsub_scalar(self):
        check_gradients(lambda a: ((1.0 - a) ** 2.0).sum(), [_vec()])

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), [_vec(), _vec()])

    def test_mul_broadcast(self):
        check_gradients(
            lambda a, b: (a * b).sum(), [_mat(2, 3), _vec(3)]
        )

    def test_div(self):
        b = np.abs(_vec()) + 1.0
        check_gradients(lambda a, b: (a / b).sum(), [_vec(), b])

    def test_rdiv_scalar(self):
        a = np.abs(_vec()) + 1.0
        check_gradients(lambda a: (2.0 / a).sum(), [a])

    def test_neg(self):
        check_gradients(lambda a: (-a * a).sum(), [_vec()])

    def test_power(self):
        a = np.abs(_vec()) + 0.5
        check_gradients(lambda a: (a**3.0).sum(), [a])

    def test_power_fractional(self):
        a = np.abs(_vec()) + 0.5
        check_gradients(lambda a: (a**0.5).sum(), [a])

    def test_square(self):
        check_gradients(lambda a: F.square(a).sum(), [_vec()])

    def test_abs(self):
        a = _vec() + 0.1  # stay away from the kink
        check_gradients(lambda a: F.abs(a).sum(), [a])


class TestTranscendental:
    def test_exp(self):
        check_gradients(lambda a: F.exp(a).sum(), [_vec()])

    def test_log(self):
        a = np.abs(_vec()) + 0.5
        check_gradients(lambda a: F.log(a).sum(), [a])

    def test_sqrt(self):
        a = np.abs(_vec()) + 0.5
        check_gradients(lambda a: F.sqrt(a).sum(), [a])

    @pytest.mark.parametrize(
        "fn", [F.tanh, F.sigmoid, F.softplus, F.relu, F.relu6]
    )
    def test_activations(self, fn):
        a = _vec(8) * 2.0 + 0.05  # avoid exact kink points
        check_gradients(lambda a: (fn(a) ** 2.0).sum(), [a])

    def test_softplus_large_positive_no_overflow(self):
        out = F.softplus(ad.Tensor([700.0]))
        assert np.isfinite(out.data).all()
        assert np.allclose(out.data, [700.0])

    def test_softplus_large_negative(self):
        out = F.softplus(ad.Tensor([-700.0]))
        assert np.allclose(out.data, [0.0])

    def test_sigmoid_extremes_stable(self):
        out = F.sigmoid(ad.Tensor([-800.0, 800.0]))
        assert np.allclose(out.data, [0.0, 1.0])

    def test_relu6_caps_at_six(self):
        out = F.relu6(ad.Tensor([-1.0, 3.0, 10.0]))
        assert np.allclose(out.data, [0.0, 3.0, 6.0])

    def test_relu6_gradient_zero_outside_band(self):
        x = ad.Tensor([-1.0, 3.0, 10.0], requires_grad=True)
        F.relu6(x).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestComparison:
    def test_maximum(self):
        check_gradients(
            lambda a, b: F.maximum(a, b).sum(), [_vec(), _vec()]
        )

    def test_minimum(self):
        check_gradients(
            lambda a, b: F.minimum(a, b).sum(), [_vec(), _vec()]
        )

    def test_maximum_tie_sends_gradient_to_first(self):
        a = ad.Tensor([1.0], requires_grad=True)
        b = ad.Tensor([1.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [1.0])
        assert np.allclose(b.grad, [0.0])

    def test_where(self):
        cond = np.array([True, False, True, False, True])
        check_gradients(
            lambda a, b: F.where(cond, a, b).sum(), [_vec(), _vec()]
        )

    def test_clip_gradient_mask(self):
        x = ad.Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        F.clip(x, 0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestLinalgAndShape:
    def test_matmul_2d(self):
        check_gradients(
            lambda a, b: (a @ b).sum(), [_mat(3, 4), _mat(4, 2)]
        )

    def test_matmul_batched(self):
        check_gradients(
            lambda a, b: F.tanh(a @ b).sum(),
            [RNG.normal(size=(2, 3, 4)), _mat(4, 2)],
        )

    def test_matmul_batched_both(self):
        check_gradients(
            lambda a, b: (a @ b).sum(),
            [RNG.normal(size=(2, 3, 4)), RNG.normal(size=(2, 4, 2))],
        )

    def test_matmul_vec_right(self):
        check_gradients(
            lambda a, v: (a @ v).sum(), [_mat(3, 4), _vec(4)]
        )

    def test_matmul_vec_left(self):
        check_gradients(
            lambda v, b: (v @ b).sum(), [_vec(3), _mat(3, 2)]
        )

    def test_matmul_vec_vec(self):
        check_gradients(lambda a, b: a @ b, [_vec(4), _vec(4)])

    def test_dot(self):
        check_gradients(lambda a, b: F.dot(a, b), [_vec(4), _vec(4)])

    def test_dot_rejects_matrices(self):
        with pytest.raises(ValueError):
            F.dot(ad.Tensor(_mat()), ad.Tensor(_mat()))

    def test_sum_axis(self):
        check_gradients(
            lambda a: (F.sum(a, axis=0) ** 2.0).sum(), [_mat()]
        )

    def test_sum_axis_keepdims(self):
        check_gradients(
            lambda a: (F.sum(a, axis=1, keepdims=True) ** 2.0).sum(),
            [_mat()],
        )

    def test_sum_negative_axis(self):
        check_gradients(
            lambda a: (F.sum(a, axis=-1) ** 2.0).sum(), [_mat()]
        )

    def test_sum_axis_tuple(self):
        check_gradients(
            lambda a: (F.sum(a, axis=(0, 1)) ** 2.0).sum(),
            [RNG.normal(size=(2, 3, 4))],
        )

    def test_mean(self):
        check_gradients(lambda a: (F.mean(a) ** 2.0).sum(), [_mat()])

    def test_mean_axis(self):
        check_gradients(
            lambda a: (F.mean(a, axis=1) ** 2.0).sum(), [_mat()]
        )

    def test_reshape(self):
        check_gradients(
            lambda a: (F.reshape(a, (4, 3)) ** 2.0).sum(), [_mat(3, 4)]
        )

    def test_transpose(self):
        check_gradients(
            lambda a: (a.T @ a).sum(), [_mat(3, 4)]
        )

    def test_transpose_axes(self):
        check_gradients(
            lambda a: (F.transpose(a, (1, 2, 0)) ** 2.0).sum(),
            [RNG.normal(size=(2, 3, 4))],
        )

    def test_swapaxes(self):
        check_gradients(
            lambda a: (F.swapaxes(a, -1, -2) ** 2.0).sum(),
            [RNG.normal(size=(2, 3, 4))],
        )

    def test_broadcast_to(self):
        check_gradients(
            lambda a: (F.broadcast_to(a, (3, 4)) ** 2.0).sum(),
            [_vec(4)],
        )


class TestIndexing:
    def test_getitem_slice(self):
        check_gradients(lambda a: (a[1:3] ** 2.0).sum(), [_vec(6)])

    def test_getitem_2d(self):
        check_gradients(lambda a: (a[:, 1:3] ** 2.0).sum(), [_mat()])

    def test_getitem_int_index(self):
        check_gradients(lambda a: (a[2] ** 2.0).sum(), [_mat()])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: (a[idx] ** 2.0).sum(), [_vec(4)])

    def test_take_axis0(self):
        idx = np.array([0, 2, 2, 1])
        check_gradients(
            lambda a: (F.take(a, idx) ** 2.0).sum(), [_mat(3, 2)]
        )

    def test_take_axis1(self):
        idx = np.array([1, 1, 3])
        check_gradients(
            lambda a: (F.take(a, idx, axis=1) ** 2.0).sum(), [_mat(3, 4)]
        )

    def test_index_add(self):
        idx = np.array([0, 1, 1, 2])
        check_gradients(
            lambda b, v: (F.index_add(b, idx, v) ** 2.0).sum(),
            [np.zeros((3, 2)), RNG.normal(size=(4, 2))],
        )

    def test_index_add_repeated_indices_accumulate(self):
        base = ad.Tensor(np.zeros(2))
        vals = ad.Tensor([1.0, 2.0, 3.0])
        out = F.index_add(base, np.array([0, 0, 1]), vals)
        assert np.allclose(out.data, [3.0, 3.0])

    def test_concatenate(self):
        check_gradients(
            lambda a, b: (F.concatenate([a, b], axis=0) ** 2.0).sum(),
            [_mat(2, 3), _mat(4, 3)],
        )

    def test_concatenate_last_axis(self):
        check_gradients(
            lambda a, b: (F.concatenate([a, b], axis=-1) ** 2.0).sum(),
            [_mat(2, 3), _mat(2, 2)],
        )

    def test_stack(self):
        check_gradients(
            lambda a, b: (F.stack([a, b], axis=0) ** 2.0).sum(),
            [_vec(4), _vec(4)],
        )


class TestDoubleBackwardOps:
    """Every op used inside force computation must be twice
    differentiable; spot-check the critical ones."""

    @pytest.mark.parametrize(
        "fn",
        [F.tanh, F.sigmoid, F.softplus],
        ids=["tanh", "sigmoid", "softplus"],
    )
    def test_activation_double(self, fn):
        x0 = _vec(4)
        x = ad.Tensor(x0, requires_grad=True)
        y = fn(x).sum()
        (g,) = ad.grad(y, [x], create_graph=True)
        z = (g * g).sum()
        (gz,) = ad.grad(z, [x])
        # compare against finite differences of z(x)
        eps = 1e-6
        num = np.zeros_like(x0)
        for i in range(len(x0)):
            for sign, store in ((1, "p"), (-1, "m")):
                xs = x0.copy()
                xs[i] += sign * eps
                xt = ad.Tensor(xs, requires_grad=True)
                (gg,) = ad.grad(fn(xt).sum(), [xt], create_graph=False)
                val = float((gg.data**2).sum())
                if sign == 1:
                    fp = val
                else:
                    fm = val
            num[i] = (fp - fm) / (2 * eps)
        assert np.allclose(gz.data, num, rtol=1e-4, atol=1e-7)

    def test_matmul_double(self):
        A0 = _mat(2, 3)
        x0 = _vec(3)
        A = ad.Tensor(A0, requires_grad=True)
        x = ad.Tensor(x0, requires_grad=True)
        y = F.tanh(A @ x).sum()
        (gx,) = ad.grad(y, [x], create_graph=True)
        z = (gx * gx).sum()
        (gA,) = ad.grad(z, [A])
        assert gA.data.shape == A0.shape
        assert np.isfinite(gA.data).all()

    def test_index_add_double(self):
        idx = np.array([0, 1, 1])
        v0 = _vec(3)
        v = ad.Tensor(v0, requires_grad=True)
        out = F.index_add(ad.Tensor(np.zeros(2)), idx, v * v)
        (g,) = ad.grad(out.sum(), [v], create_graph=True)  # 2v
        z = (g * g).sum()  # 4 v^2
        z.backward()
        assert np.allclose(v.grad, 8.0 * v0)

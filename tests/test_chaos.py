"""The deterministic chaos harness: fault-plan DSL, unified injector,
invariant checker, and the property-based equivalence suite.

The load-bearing property (the ISSUE's acceptance bar): for seeded
fault plans drawn per driver — generational on a cluster, steady-state
inline, baselines on a cluster — the surviving Pareto front of a
faulted campaign equals the fault-free campaign's front exactly
(modulo MAXINT individuals), and the InvariantChecker reports zero
violations on every journal the suite produces.
"""

import dataclasses
import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ALL_KINDS,
    RECOVERABLE_KINDS,
    SITES,
    STORE_KINDS,
    Fault,
    FaultPlan,
    InvariantChecker,
    verify_resume_equivalence,
)
from repro.distributed import LocalCluster
from repro.engine import EvaluationEngine
from repro.evo.individual import MAXINT, Individual
from repro.evo.problem import Problem
from repro.hpo.baselines import random_search
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.injection import get_injector, use_injector
from repro.mo.pareto import pareto_front
from repro.obs import Tracer
from repro.store.cache import CachedProblem, EvaluationCache
from repro.store.journal import (
    CampaignJournal,
    journal_path,
    read_journal,
)
from repro.store.resume import resume_campaign

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

#: small but real: 2 runs x (2+1) generations x 6 = 36 trainings
CFG = CampaignConfig(n_runs=2, pop_size=6, generations=2, base_seed=7)

GEN_PLAN_SEEDS = (101, 102, 103, 104, 105)
SS_PLAN_SEEDS = (201, 202, 203, 204, 205)
BASE_PLAN_SEEDS = (301, 302, 303, 304, 305)


class IdentityDecoder:
    def decode(self, genome):
        return genome


class CountingProblem(Problem):
    n_objectives = 2

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def evaluate_with_metadata(self, phenome, uuid=None):
        with self._lock:
            self.calls += 1
        values = (
            list(phenome.values())
            if isinstance(phenome, dict)
            else phenome
        )
        x = float(np.sum(np.asarray(values, dtype=np.float64)))
        return np.array([x, x * 2.0]), {}


def _ind(genome, problem):
    ind = Individual(
        np.asarray(genome, dtype=np.float64),
        decoder=IdentityDecoder(),
        problem=problem,
    )
    ind.n_objectives = problem.n_objectives
    return ind


def _all_evaluated(result):
    return [
        ind for run in result.runs for rec in run for ind in rec.evaluated
    ]


def _evals(result):
    """Every completed evaluation as sorted (genome, fitness) tuples —
    the bit-level equivalence currency."""
    return sorted(
        (
            tuple(float(g) for g in ind.genome),
            tuple(float(f) for f in np.atleast_1d(ind.fitness)),
        )
        for ind in _all_evaluated(result)
    )


def _front_points(individuals):
    return [
        (
            tuple(float(g) for g in ind.genome),
            tuple(float(f) for f in ind.fitness),
        )
        for ind in pareto_front(individuals)
    ]


def _campaign(directory, plan=None, mode="generational", cluster=True):
    """One full campaign, optionally under a fault plan, leaving a
    journal, a cache, and an in-memory trace behind."""
    injector = None if plan is None else plan.injector()
    tracer = Tracer()
    cache = EvaluationCache(directory / "cache", fault_injector=injector)
    journal = CampaignJournal(
        journal_path(directory),
        problem_spec={"backend": "surrogate"},
        fault_injector=injector,
    )
    config = dataclasses.replace(CFG, mode=mode)

    def factory(seed):
        return CachedProblem(SurrogateDeepMDProblem(seed=seed), cache)

    try:
        with use_injector(injector):
            if cluster:
                with LocalCluster(
                    n_workers=3,
                    fault_policy=injector,
                    max_retries=6,
                    tracer=tracer,
                ) as cl:
                    result = Campaign(
                        factory,
                        config,
                        client=cl.client(),
                        tracer=tracer,
                        journal=journal,
                    ).run()
            else:
                result = Campaign(
                    factory, config, tracer=tracer, journal=journal
                ).run()
    finally:
        journal.close()
    return result, tracer, injector


def _assert_invariants(directory, tracer=None, injector=None, **kwargs):
    cache_dir = directory / "cache"
    checker = InvariantChecker(
        journal=journal_path(directory),
        trace=None if tracer is None else tracer.records,
        cache_dir=cache_dir if cache_dir.exists() else None,
        injected=() if injector is None else injector.log,
        **kwargs,
    )
    report = checker.check()
    assert report.ok, report.summary()
    # the pass must not be vacuous: the checker saw real data — unless
    # an injected tear chopped the journal before any evaluation record
    if read_journal(journal_path(directory)).n_torn == 0:
        assert report.checked.get("terminal_state", 0) > 0
    return report


def _gen_plan(seed):
    return FaultPlan.random(
        seed,
        kinds=RECOVERABLE_KINDS,
        n_faults=4,
        seconds=0.03,
        horizon={"journal_truncate": 10, "cache_corrupt": 20},
        max_per_kind={"worker_death": 2},
    )


def _ss_plan(seed):
    return FaultPlan.random(
        seed,
        kinds=STORE_KINDS,
        n_faults=4,
        horizon={"journal_truncate": 14, "cache_corrupt": 24},
    )


def _base_plan(seed):
    return FaultPlan.random(
        seed,
        kinds=("worker_death", "slow_worker", "submit_delay", "cache_corrupt"),
        n_faults=4,
        seconds=0.03,
        horizon=18,
        max_per_kind={"worker_death": 2},
    )


# ----------------------------------------------------------------------
# the FaultPlan DSL
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_every_kind_has_a_site(self):
        assert set(ALL_KINDS) == set(SITES)
        assert set(RECOVERABLE_KINDS) <= set(ALL_KINDS)
        assert set(STORE_KINDS) <= set(RECOVERABLE_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("cosmic_ray")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Fault("worker_death", at=-1)
        with pytest.raises(ValueError):
            Fault("worker_death", count=0)
        with pytest.raises(ValueError, match="offset"):
            Fault("journal_truncate", offset=0)

    def test_window_covers_count(self):
        fault = Fault("worker_death", at=3, count=2)
        assert list(fault.window()) == [3, 4]
        assert fault.site == "worker.death"

    def test_save_load_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                Fault("slow_worker", at=1, seconds=0.25, worker="w1"),
                Fault("journal_truncate", at=2, offset=17),
            ],
            seed=99,
        )
        path = plan.save(tmp_path / "plan.json")
        clone = FaultPlan.load(path)
        assert clone.to_doc() == plan.to_doc()
        assert clone.faults[0].worker == "w1"
        assert clone.seed == 99

    def test_random_respects_caps_and_kinds(self):
        plan = FaultPlan.random(
            0,
            kinds=("worker_death",),
            n_faults=10,
            max_per_kind={"worker_death": 2},
        )
        assert len(plan) == 2
        assert plan.kinds() == {"worker_death"}

    def test_random_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan.random(0, kinds=("bit_flip",))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_plans_deterministic_and_bounded(self, seed):
        plan = FaultPlan.random(seed, kinds=ALL_KINDS, n_faults=5, horizon=12)
        again = FaultPlan.random(
            seed, kinds=ALL_KINDS, n_faults=5, horizon=12
        )
        assert again.to_doc() == plan.to_doc()
        clone = FaultPlan.from_doc(json.loads(json.dumps(plan.to_doc())))
        assert clone.to_doc() == plan.to_doc()
        assert len(plan) <= 5
        for fault in plan:
            assert fault.kind in ALL_KINDS
            assert 0 <= fault.at < 12
            if fault.kind == "journal_truncate":
                assert fault.offset >= 1
            if fault.kind in ("slow_worker", "submit_delay"):
                assert 0.0 <= fault.seconds <= 0.05


# ----------------------------------------------------------------------
# the unified Injector
# ----------------------------------------------------------------------
class TestInjector:
    def test_window_fires_exactly_count_times(self):
        injector = FaultPlan(
            [Fault("worker_death", at=2, count=2)]
        ).injector()
        hits = [injector.should_fail("w", i) for i in range(5)]
        assert hits == [False, False, True, True, False]
        assert injector.counters()["worker.death"] == 5
        assert len(injector.fired("worker_death")) == 2

    def test_worker_scoped_fault_matches_own_task_index(self):
        injector = FaultPlan(
            [Fault("slow_worker", at=0, seconds=0.5, worker="w1")]
        ).injector()
        assert injector.worker_delay("w0", 0) == 0.0
        assert injector.worker_delay("w1", 0) == 0.5
        assert injector.worker_delay("w1", 1) == 0.0

    def test_submit_delay(self):
        injector = FaultPlan(
            [Fault("submit_delay", at=1, seconds=0.2)]
        ).injector()
        assert injector.submit_delay("task-0") == 0.0
        assert injector.submit_delay("task-1") == 0.2

    def test_evaluation_faults(self):
        injector = FaultPlan(
            [Fault("eval_exception", at=1), Fault("eval_timeout", at=2)]
        ).injector()
        assert injector.evaluation_fault() is None
        fault = injector.evaluation_fault()
        assert type(fault.exception).__name__ == "InjectedFaultError"
        assert not fault.timeout
        fault = injector.evaluation_fault()
        assert fault.exception is None and fault.timeout

    def test_journal_truncation_returns_max_offset(self):
        injector = FaultPlan(
            [Fault("journal_truncate", at=0, offset=17)]
        ).injector()
        assert injector.journal_truncation() == 17
        assert injector.journal_truncation() is None

    def test_corrupt_cache_entry_garbles_file(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text(json.dumps({"key": "k", "fitness": [1.0]}))
        injector = FaultPlan([Fault("cache_corrupt", at=0)]).injector()
        assert injector.corrupt_cache_entry(target)
        with pytest.raises(json.JSONDecodeError):
            json.loads(target.read_text())
        assert not injector.corrupt_cache_entry(target)

    def test_reset_replays_the_plan(self):
        injector = FaultPlan([Fault("worker_death", at=1)]).injector()
        first = [injector.should_fail("w", i) for i in range(3)]
        injector.reset()
        assert injector.counters() == {}
        assert injector.log == []
        assert [injector.should_fail("w", i) for i in range(3)] == first

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_log_is_deterministic(self, seed):
        plan = FaultPlan.random(
            seed,
            kinds=("worker_death", "slow_worker", "submit_delay"),
            n_faults=4,
            horizon=8,
        )

        def drive(injector):
            for i in range(10):
                injector.should_fail(f"w{i % 2}", i)
                injector.worker_delay(f"w{i % 2}", i)
                injector.submit_delay(f"task-{i}")
            return [(f.kind, f.site, f.index) for f in injector.log]

        assert drive(plan.injector()) == drive(plan.injector())

    def test_use_injector_scopes_the_registry(self):
        injector = FaultPlan([]).injector()
        assert get_injector() is None
        with use_injector(injector):
            assert get_injector() is injector
        assert get_injector() is None


# ----------------------------------------------------------------------
# injection through the engine (incl. satellite: timeout enforcement
# under a slow-worker fault)
# ----------------------------------------------------------------------
class TestEngineInjection:
    def test_injected_exception_maps_to_maxint(self):
        problem = CountingProblem()
        plan = FaultPlan([Fault("eval_exception", at=1)])
        engine = EvaluationEngine(fault_injector=plan.injector())
        inds = [_ind([float(i), 1.0], problem) for i in range(3)]
        engine.evaluate(inds)
        assert problem.calls == 2  # the faulted dispatch never trains
        assert np.all(np.asarray(inds[1].fitness) == MAXINT)
        assert inds[1].metadata["failed"]
        assert "InjectedFaultError" in inds[1].metadata["failure_cause"]
        for ind in (inds[0], inds[2]):
            assert not ind.metadata.get("failed")
            assert not np.any(np.asarray(ind.fitness) == MAXINT)

    def test_forced_timeout_beats_eager_inline_backend(self):
        problem = CountingProblem()
        plan = FaultPlan([Fault("eval_timeout", at=0)])
        engine = EvaluationEngine(
            timeout=100.0, fault_injector=plan.injector()
        )
        ind = _ind([1.0, 2.0], problem)
        engine.evaluate([ind])
        assert np.all(np.asarray(ind.fitness) == MAXINT)
        assert "TrainingTimeoutError" in ind.metadata["failure_cause"]
        assert engine.stats.timeouts == 1

    def test_slow_worker_trips_engine_timeout(self):
        problem = CountingProblem()
        plan = FaultPlan([Fault("slow_worker", at=0, seconds=0.6)])
        injector = plan.injector()
        # two workers: the second task must run on the idle worker, or
        # it would queue behind the sleeping one past the budget too
        with LocalCluster(n_workers=2, fault_policy=injector) as cluster:
            engine = EvaluationEngine(
                client=cluster.client(),
                timeout=0.08,
                fault_injector=injector,
            )
            slow = _ind([1.0, 2.0], problem)
            engine.evaluate([slow])
            # snapshot now: the sleeping worker still holds the shared
            # individual and will overwrite it when it finally finishes
            timed_out_fitness = np.array(slow.fitness, copy=True)
            cause = slow.metadata.get("failure_cause", "")
            fine = _ind([3.0, 4.0], problem)
            engine.evaluate([fine])
        assert np.all(timed_out_fitness == MAXINT)
        assert "TrainingTimeoutError" in cause
        assert engine.stats.timeouts == 1
        assert not fine.metadata.get("failed")
        assert len(injector.fired("slow_worker")) == 1


# ----------------------------------------------------------------------
# injection through the store
# ----------------------------------------------------------------------
class TestStoreInjection:
    def test_corrupted_insert_recovers_by_retraining(self, tmp_path):
        plan = FaultPlan([Fault("cache_corrupt", at=0)])
        injector = plan.injector()
        cache = EvaluationCache(tmp_path / "cache", fault_injector=injector)
        problem = CountingProblem()
        cached = CachedProblem(problem, cache)
        first = _ind([1.0, 2.0], cached)
        first.evaluate()
        assert problem.calls == 1
        assert len(injector.fired("cache_corrupt")) == 1
        # the corrupted entry must be observable: the next evaluation
        # of the same genome misses and retrains to the same fitness
        second = _ind([1.0, 2.0], cached)
        second.evaluate()
        assert problem.calls == 2
        assert not second.metadata.get("cache_hit")
        assert np.allclose(first.fitness, second.fitness)
        assert cache.stats()["corrupt"] >= 1

    def test_journal_truncation_leaves_torn_tail(self, tmp_path):
        plan = FaultPlan([Fault("journal_truncate", at=1, offset=9)])
        injector = plan.injector()
        journal = CampaignJournal(
            journal_path(tmp_path),
            problem_spec={"backend": "surrogate"},
            fault_injector=injector,
        )
        journal.begin_campaign(CFG)
        journal.begin_run(0, 7)  # <- chopped 9 bytes after fsync
        journal.close()
        state = read_journal(journal_path(tmp_path))
        assert state.n_torn == 1
        assert state.config_doc is not None
        report = InvariantChecker(
            journal=journal_path(tmp_path), injected=injector.log
        ).check()
        assert report.ok, report.summary()
        # the same journal without the injector's confession is a bug
        bad = InvariantChecker(journal=journal_path(tmp_path)).check()
        assert any(
            v.invariant == "journal_untorn" for v in bad.violations
        )


# ----------------------------------------------------------------------
# the InvariantChecker catches real violations
# ----------------------------------------------------------------------
def _write_journal(path, docs):
    path.write_text("".join(json.dumps(d) + "\n" for d in docs))


def _gen_doc(genomes, fitness, metadata, generation=0, n_failures=None):
    if n_failures is None:
        n_failures = sum(1 for m in metadata if m.get("failed"))
    group = {
        "genomes": genomes,
        "fitness": fitness,
        "uuids": [f"u{i}" for i in range(len(genomes))],
        "metadata": metadata,
    }
    return {
        "type": "generation",
        "run": 0,
        "generation": generation,
        "n_failures": n_failures,
        "population": group,
        "evaluated": group,
    }


def _journal_docs(*generation_docs):
    return [
        {
            "type": "campaign_begin",
            "schema_version": 2,
            "config": {"n_runs": 1},
            "problem_spec": {},
        },
        {"type": "run_begin", "run": 0, "seed": 1},
        *generation_docs,
        {"type": "run_end", "run": 0},
        {"type": "campaign_end"},
    ]


class TestInvariantCheckerNegative:
    def _violations(self, tmp_path, doc, **kwargs):
        path = tmp_path / "journal.jsonl"
        _write_journal(path, _journal_docs(doc))
        report = InvariantChecker(journal=path, **kwargs).check()
        return {v.invariant for v in report.violations}

    def test_maxint_without_failed_flag(self, tmp_path):
        doc = _gen_doc([[1.0, 2.0]], [[MAXINT, MAXINT]], [{}])
        assert "failed_iff_maxint" in self._violations(tmp_path, doc)

    def test_failed_without_maxint(self, tmp_path):
        doc = _gen_doc([[1.0, 2.0]], [[1.0, 2.0]], [{"failed": True}])
        assert "failed_iff_maxint" in self._violations(tmp_path, doc)

    def test_missing_fitness_is_not_terminal(self, tmp_path):
        doc = _gen_doc([[1.0, 2.0]], [None], [{}])
        assert "terminal_state" in self._violations(tmp_path, doc)

    def test_failure_count_mismatch(self, tmp_path):
        doc = _gen_doc([[1.0, 2.0]], [[1.0, 2.0]], [{}], n_failures=3)
        assert "failure_count_consistent" in self._violations(
            tmp_path, doc
        )

    def test_genome_trained_twice_in_one_batch(self, tmp_path):
        doc = _gen_doc(
            [[1.0, 2.0], [1.0, 2.0]],
            [[1.0, 1.0], [1.0, 1.0]],
            [{}, {}],
        )
        assert "trained_once_per_batch" in self._violations(
            tmp_path, doc
        )
        # dedup=False waives the promise
        assert "trained_once_per_batch" not in self._violations(
            tmp_path, doc, dedup=False
        )

    def test_failed_cache_entry_flagged(self, tmp_path):
        entry_dir = tmp_path / "cache" / "ab"
        entry_dir.mkdir(parents=True)
        (entry_dir / "abcd.json").write_text(
            json.dumps({"key": "abcd", "failed": True})
        )
        report = InvariantChecker(cache_dir=tmp_path / "cache").check()
        assert any(
            v.invariant == "failures_not_cached"
            for v in report.violations
        )
        tolerant = InvariantChecker(
            cache_dir=tmp_path / "cache", cache_failures=True
        ).check()
        assert tolerant.ok, tolerant.summary()

    def test_unexplained_cache_corruption_flagged(self, tmp_path):
        entry_dir = tmp_path / "cache" / "ab"
        entry_dir.mkdir(parents=True)
        (entry_dir / "abcd.json").write_text("not json {")
        report = InvariantChecker(cache_dir=tmp_path / "cache").check()
        assert any(
            v.invariant == "cache_entries_readable"
            for v in report.violations
        )
        confessed = InvariantChecker(
            cache_dir=tmp_path / "cache",
            injected=[Fault("cache_corrupt")],
        ).check()
        assert confessed.ok, confessed.summary()

    def test_double_terminal_state_in_trace(self):
        trace = [
            {"type": "event", "name": "task.submit", "tags": {"task": "t0"}},
            {"type": "event", "name": "task.done", "tags": {"task": "t0"}},
            {"type": "event", "name": "task.done", "tags": {"task": "t0"}},
        ]
        report = InvariantChecker(trace=trace).check()
        assert any(
            v.invariant == "one_terminal_state" for v in report.violations
        )

    def test_unaccounted_task_must_be_stranded(self):
        trace = [
            {"type": "event", "name": "task.submit", "tags": {"task": "t0"}},
        ]
        report = InvariantChecker(trace=trace).check()
        assert any(
            v.invariant == "one_terminal_state" for v in report.violations
        )
        stranded = trace + [
            {
                "type": "event",
                "name": "task.stranded",
                "tags": {"count": 1},
            }
        ]
        assert InvariantChecker(trace=stranded).check().ok

    def test_requeued_task_must_complete_elsewhere(self):
        def trace(final_worker):
            return [
                {
                    "type": "event",
                    "name": "task.submit",
                    "tags": {"task": "t0"},
                },
                {
                    "type": "event",
                    "name": "task.requeued",
                    "tags": {"task": "t0", "from_worker": "w0"},
                },
                {
                    "type": "event",
                    "name": "task.done",
                    "tags": {"task": "t0"},
                },
                {
                    "type": "span",
                    "name": "worker.task",
                    "tags": {"task": "t0", "worker": "w0", "attempt": 0},
                },
                {
                    "type": "span",
                    "name": "worker.task",
                    "tags": {
                        "task": "t0",
                        "worker": final_worker,
                        "attempt": 1,
                    },
                },
            ]

        good = InvariantChecker(trace=trace("w1")).check()
        assert good.ok, good.summary()
        bad = InvariantChecker(trace=trace("w0")).check()
        assert any(
            v.invariant == "requeued_elsewhere" for v in bad.violations
        )
        waived = InvariantChecker(
            trace=trace("w0"), allow_same_worker_retry=True
        ).check()
        assert waived.ok, waived.summary()

    def test_requeued_task_must_reach_terminal_state(self):
        trace = [
            {"type": "event", "name": "task.submit", "tags": {"task": "t0"}},
            {
                "type": "event",
                "name": "task.requeued",
                "tags": {"task": "t0", "from_worker": "w0"},
            },
            {
                "type": "event",
                "name": "task.stranded",
                "tags": {"count": 1},
            },
        ]
        report = InvariantChecker(trace=trace).check()
        assert any(
            v.invariant == "requeued_completes" for v in report.violations
        )


# ----------------------------------------------------------------------
# the equivalence property, per driver
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def generational_reference(tmp_path_factory):
    directory = tmp_path_factory.mktemp("gen-ref")
    result, tracer, _ = _campaign(directory)
    return {
        "dir": directory,
        "tracer": tracer,
        "evals": _evals(result),
        "front": _front_points(_all_evaluated(result)),
    }


@pytest.fixture(scope="module")
def steady_reference(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ss-ref")
    result, tracer, _ = _campaign(
        directory, mode="steady-state", cluster=False
    )
    return {
        "dir": directory,
        "evals": _evals(result),
        "front": _front_points(_all_evaluated(result)),
    }


class TestGenerationalEquivalence:
    def test_reference_journal_is_invariant_clean(
        self, generational_reference
    ):
        _assert_invariants(
            generational_reference["dir"],
            tracer=generational_reference["tracer"],
        )

    @pytest.mark.parametrize("plan_seed", GEN_PLAN_SEEDS)
    def test_faulted_campaign_matches_reference(
        self, tmp_path, generational_reference, plan_seed
    ):
        plan = _gen_plan(plan_seed)
        result, tracer, injector = _campaign(tmp_path, plan=plan)
        assert _evals(result) == generational_reference["evals"]
        assert (
            _front_points(_all_evaluated(result))
            == generational_reference["front"]
        )
        _assert_invariants(tmp_path, tracer=tracer, injector=injector)


class TestSteadyStateEquivalence:
    def test_reference_journal_is_invariant_clean(self, steady_reference):
        _assert_invariants(steady_reference["dir"])

    @pytest.mark.parametrize("plan_seed", SS_PLAN_SEEDS)
    def test_faulted_campaign_matches_reference(
        self, tmp_path, steady_reference, plan_seed
    ):
        plan = _ss_plan(plan_seed)
        result, _, injector = _campaign(
            tmp_path, plan=plan, mode="steady-state", cluster=False
        )
        assert _evals(result) == steady_reference["evals"]
        assert (
            _front_points(_all_evaluated(result))
            == steady_reference["front"]
        )
        _assert_invariants(tmp_path, injector=injector)


def _baseline_search(directory, plan=None):
    """random_search over a cluster, journaled per completion."""
    injector = None if plan is None else plan.injector()
    tracer = Tracer()
    cache = EvaluationCache(directory / "cache", fault_injector=injector)
    journal = CampaignJournal(
        journal_path(directory),
        problem_spec={"backend": "surrogate"},
        fault_injector=injector,
    )
    problem = CachedProblem(SurrogateDeepMDProblem(seed=7), cache)
    try:
        with use_injector(injector):
            with LocalCluster(
                n_workers=3,
                fault_policy=injector,
                max_retries=6,
                tracer=tracer,
            ) as cluster:
                journal.begin_campaign(
                    CampaignConfig(n_runs=1, pop_size=6, generations=2)
                )
                journal.begin_run(0, 7)
                engine = EvaluationEngine(
                    client=cluster.client(),
                    journal=journal,
                    tracer=tracer,
                    fault_injector=injector,
                )
                result = random_search(problem, budget=18, rng=7, engine=engine)
                journal.end_run(0)
                journal.end_campaign()
    finally:
        journal.close()
    return result, tracer, injector


@pytest.fixture(scope="module")
def baseline_reference(tmp_path_factory):
    directory = tmp_path_factory.mktemp("base-ref")
    result, _, _ = _baseline_search(directory)
    evals = sorted(
        (
            tuple(float(g) for g in ind.genome),
            tuple(float(f) for f in ind.fitness),
        )
        for ind in result.evaluated
    )
    return {
        "dir": directory,
        "evals": evals,
        "front": _front_points(result.evaluated),
    }


class TestBaselineEquivalence:
    def test_reference_journal_is_invariant_clean(self, baseline_reference):
        _assert_invariants(baseline_reference["dir"])

    @pytest.mark.parametrize("plan_seed", BASE_PLAN_SEEDS)
    def test_faulted_search_matches_reference(
        self, tmp_path, baseline_reference, plan_seed
    ):
        plan = _base_plan(plan_seed)
        result, tracer, injector = _baseline_search(tmp_path, plan=plan)
        evals = sorted(
            (
                tuple(float(g) for g in ind.genome),
                tuple(float(f) for f in ind.fitness),
            )
            for ind in result.evaluated
        )
        assert evals == baseline_reference["evals"]
        assert (
            _front_points(result.evaluated)
            == baseline_reference["front"]
        )
        _assert_invariants(tmp_path, tracer=tracer, injector=injector)


# ----------------------------------------------------------------------
# MAXINT-modulo equivalence: injected failures shrink the front by
# exactly the faulted individuals, nothing else
# ----------------------------------------------------------------------
class TestMaxintModulo:
    def test_front_equals_reference_minus_failed(self, tmp_path):
        config = CampaignConfig(
            n_runs=1, pop_size=6, generations=2, base_seed=7
        )
        reference = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        # 18 dispatches per run; ordinals 12..17 are the final
        # generation, so breeding is already done when these fire
        plan = FaultPlan(
            [Fault("eval_exception", at=13), Fault("eval_exception", at=16)]
        )
        injector = plan.injector()
        journal = CampaignJournal(
            journal_path(tmp_path), problem_spec={"backend": "surrogate"}
        )
        try:
            with use_injector(injector):
                chaotic = Campaign(
                    lambda seed: SurrogateDeepMDProblem(seed=seed),
                    config,
                    journal=journal,
                ).run()
        finally:
            journal.close()
        # the surrogate also fails naturally (unstable-lr band) — those
        # failures are deterministic and identical in both runs; only
        # the injected ones may differ
        failed = [
            ind
            for ind in _all_evaluated(chaotic)
            if "InjectedFaultError"
            in ind.metadata.get("failure_cause", "")
        ]
        assert len(failed) == 2
        failed_keys = set()
        for ind in failed:
            assert ind.metadata["failed"]
            assert np.all(np.asarray(ind.fitness) == MAXINT)
            failed_keys.add(tuple(float(g) for g in ind.genome))
        # every non-faulted evaluation is bit-identical to the reference
        ref_evals = _evals(reference)
        assert [e for e in _evals(chaotic) if e[0] not in failed_keys] == [
            e for e in ref_evals if e[0] not in failed_keys
        ]
        # ...and the surviving front is the reference front modulo the
        # MAXINT individuals
        ref_minus_failed = [
            ind
            for ind in _all_evaluated(reference)
            if tuple(float(g) for g in ind.genome) not in failed_keys
        ]
        assert _front_points(_all_evaluated(chaotic)) == _front_points(
            ref_minus_failed
        )
        report = InvariantChecker(
            journal=journal_path(tmp_path), injected=injector.log
        ).check()
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# kill / resume under faults
# ----------------------------------------------------------------------
class _Kill(Exception):
    pass


class TestResumeUnderFaults:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        base = tmp_path / "base"
        chaos_dir = tmp_path / "chaos"
        journal_a = CampaignJournal(
            journal_path(base), problem_spec={"backend": "surrogate"}
        )
        try:
            reference = Campaign(
                lambda seed: SurrogateDeepMDProblem(seed=seed),
                CFG,
                journal=journal_a,
            ).run()
        finally:
            journal_a.close()

        # phase 1: run under cache-corruption faults, die after run 0
        # committed generation 1
        plan1 = FaultPlan(
            [Fault("cache_corrupt", at=1), Fault("cache_corrupt", at=5)]
        )
        inj1 = plan1.injector()
        cache1 = EvaluationCache(
            chaos_dir / "cache", fault_injector=inj1
        )
        journal_b = CampaignJournal(
            journal_path(chaos_dir),
            problem_spec={"backend": "surrogate"},
            fault_injector=inj1,
        )

        def killer(run_index, rec):
            if run_index == 0 and rec.generation == 1:
                raise _Kill()

        try:
            with use_injector(inj1):
                with pytest.raises(_Kill):
                    Campaign(
                        lambda seed: CachedProblem(
                            SurrogateDeepMDProblem(seed=seed), cache1
                        ),
                        CFG,
                        journal=journal_b,
                    ).run(callback=killer)
        finally:
            journal_b.close()

        # phase 2: resume under a different fault plan
        plan2 = FaultPlan([Fault("cache_corrupt", at=0)])
        inj2 = plan2.injector()
        cache2 = EvaluationCache(
            chaos_dir / "cache", fault_injector=inj2
        )
        with use_injector(inj2):
            resumed = resume_campaign(chaos_dir, cache=cache2)

        assert (
            verify_resume_equivalence(
                journal_path(base), journal_path(chaos_dir)
            )
            == []
        )
        assert _evals(resumed) == _evals(reference)
        assert _front_points(_all_evaluated(resumed)) == _front_points(
            _all_evaluated(reference)
        )
        report = InvariantChecker(
            journal=journal_path(chaos_dir),
            cache_dir=chaos_dir / "cache",
            injected=[*inj1.log, *inj2.log],
        ).check()
        assert report.ok, report.summary()

    def test_resume_after_injected_torn_tail(self, tmp_path):
        base = tmp_path / "base"
        torn = tmp_path / "torn"
        journal_a = CampaignJournal(
            journal_path(base), problem_spec={"backend": "surrogate"}
        )
        try:
            reference = Campaign(
                lambda seed: SurrogateDeepMDProblem(seed=seed),
                CFG,
                journal=journal_a,
            ).run()
        finally:
            journal_a.close()

        # append ordinal 9 is run 1's final generation record: the
        # campaign "finishes" but its journal tail is torn mid-file
        plan = FaultPlan([Fault("journal_truncate", at=9, offset=30)])
        injector = plan.injector()
        journal_b = CampaignJournal(
            journal_path(torn),
            problem_spec={"backend": "surrogate"},
            fault_injector=injector,
        )
        try:
            with use_injector(injector):
                Campaign(
                    lambda seed: SurrogateDeepMDProblem(seed=seed),
                    CFG,
                    journal=journal_b,
                ).run()
        finally:
            journal_b.close()
        assert read_journal(journal_path(torn)).n_torn >= 1
        assert len(injector.fired("journal_truncate")) == 1

        with pytest.warns(UserWarning, match="torn"):
            resumed = resume_campaign(torn)
        assert _evals(resumed) == _evals(reference)
        assert _front_points(_all_evaluated(resumed)) == _front_points(
            _all_evaluated(reference)
        )


# ----------------------------------------------------------------------
# the CLI: chaos-seeded kill → resume, end to end
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCliChaos:
    def _run_cli(self, args, cwd):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.hpo.cli", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_chaos_kill_resume_matches_clean_campaign(self, tmp_path):
        common = [
            "campaign",
            "--runs", "2",
            "--pop-size", "6",
            "--generations", "3",
            "--seed", "7",
        ]
        base = self._run_cli(common + ["--save", "base"], cwd=tmp_path)
        assert base.returncode == 0, base.stderr
        killed = self._run_cli(
            common
            + [
                "--save", "killed",
                "--chaos-seed", "11",
                "--kill-after-evals", "20",
            ],
            cwd=tmp_path,
        )
        assert killed.returncode == 137, killed.stderr
        assert (tmp_path / "killed" / "chaos_plan_11.json").exists()
        resumed = self._run_cli(
            ["resume", "killed", "--chaos-seed", "12"], cwd=tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "chaos invariants: OK" in resumed.stdout
        assert (tmp_path / "killed" / "chaos_plan_12.json").exists()

        from repro.io import load_campaign

        a = load_campaign(tmp_path / "base")
        b = load_campaign(tmp_path / "killed")
        front_a = _front_points(a.last_generation_individuals())
        front_b = _front_points(b.last_generation_individuals())
        assert front_a == front_b

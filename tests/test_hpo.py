"""Tests for the paper's contribution layer: representation, surrogate
landscape, evaluator, driver, campaign, chemical selection, baselines."""

import numpy as np
import pytest

from repro.evo.individual import MAXINT, RobustIndividual
from repro.exceptions import TrainingDivergedError
from repro.hpo import (
    Campaign,
    CampaignConfig,
    DeepMDRepresentation,
    ENERGY_ACCURACY_EV_PER_ATOM,
    FORCE_ACCURACY_EV_PER_A,
    GENE_NAMES,
    LandscapeCalibration,
    NSGA2Settings,
    SurrogateDeepMDProblem,
    chemically_accurate,
    filter_chemically_accurate,
    grid_search,
    random_search,
    run_deepmd_nsga2,
    select_representatives,
    weighted_sum_ea,
)
from repro.hpo.representation import _CATEGORICAL_CHOICES


def _good_phenome(**over):
    phenome = {
        "start_lr": 4e-3,
        "stop_lr": 1e-4,
        "rcut": 11.0,
        "rcut_smth": 2.2,
        "scale_by_worker": "none",
        "desc_activ_func": "tanh",
        "fitting_activ_func": "tanh",
    }
    phenome.update(over)
    return phenome


class TestRepresentation:
    def test_seven_genes_in_paper_order(self):
        assert GENE_NAMES == (
            "start_lr",
            "stop_lr",
            "rcut",
            "rcut_smth",
            "scale_by_worker",
            "desc_activ_func",
            "fitting_activ_func",
        )

    def test_table1_ranges(self):
        rows = {r["hyperparameter"]: r for r in DeepMDRepresentation.table1()}
        assert rows["start_lr"]["initialization range"] == (3.51e-8, 0.01)
        assert rows["stop_lr"]["initialization range"] == (3.51e-8, 0.0001)
        assert rows["rcut"]["initialization range"] == (6.0, 12.0)
        assert rows["rcut_smth"]["initialization range"] == (2.0, 6.0)
        assert rows["scale_by_worker"]["initialization range"] == (0.0, 3.0)
        assert rows["desc_activ_func"]["initialization range"] == (0.0, 5.0)

    def test_table1_stds(self):
        rows = {r["hyperparameter"]: r for r in DeepMDRepresentation.table1()}
        assert rows["start_lr"]["mutation standard deviation"] == 0.001
        assert rows["stop_lr"]["mutation standard deviation"] == 0.0001
        assert rows["rcut"]["mutation standard deviation"] == 0.0625

    def test_decoder_produces_phenome_dict(self):
        decoder = DeepMDRepresentation.decoder()
        genome = np.array([1e-3, 1e-5, 8.0, 3.0, 2.2, 4.9, 0.3])
        phenome = decoder.decode(genome)
        assert phenome["start_lr"] == 1e-3
        assert phenome["scale_by_worker"] == "none"  # floor(2.2) % 3
        assert phenome["desc_activ_func"] == "tanh"  # floor(4.9) % 5
        assert phenome["fitting_activ_func"] == "relu"

    def test_encode_decode_roundtrip(self):
        phenome = _good_phenome()
        genome = DeepMDRepresentation.encode(phenome)
        decoded = DeepMDRepresentation.decoder().decode(genome)
        assert decoded == phenome

    def test_bounds_match_init_ranges(self):
        assert np.array_equal(
            DeepMDRepresentation.bounds, DeepMDRepresentation.init_ranges
        )

    def test_validate_phenome_flags_bad_radii(self):
        problems = DeepMDRepresentation.validate_phenome(
            _good_phenome(rcut=6.0, rcut_smth=6.0)
        )
        assert any("rcut_smth" in p for p in problems)

    def test_validate_phenome_ok(self):
        assert DeepMDRepresentation.validate_phenome(_good_phenome()) == []

    def test_categorical_choices_match_substrates(self):
        from repro.nn.activations import ACTIVATION_NAMES
        from repro.nn.lr_schedule import WORKER_SCALINGS

        assert _CATEGORICAL_CHOICES["scale_by_worker"] == WORKER_SCALINGS
        assert _CATEGORICAL_CHOICES["desc_activ_func"] == ACTIVATION_NAMES


class TestSurrogateLandscape:
    def _problem(self, **kwargs):
        return SurrogateDeepMDProblem(seed=0, **kwargs)

    def test_good_config_is_chemically_accurate_region(self):
        energy, force = self._problem().mean_objectives(_good_phenome())
        assert force < FORCE_ACCURACY_EV_PER_A
        assert energy < ENERGY_ACCURACY_EV_PER_ATOM

    def test_small_rcut_fails_force_accuracy(self):
        _, force = self._problem().mean_objectives(
            _good_phenome(rcut=6.5)
        )
        assert force > FORCE_ACCURACY_EV_PER_A

    def test_rcut_monotone_improves_force(self):
        prob = self._problem()
        forces = [
            prob.mean_objectives(_good_phenome(rcut=r))[1]
            for r in (6.5, 8.0, 10.0, 12.0)
        ]
        assert all(a > b for a, b in zip(forces, forces[1:]))

    def test_fitting_relu_penalized(self):
        prob = self._problem()
        _, f_relu = prob.mean_objectives(
            _good_phenome(fitting_activ_func="relu")
        )
        _, f_tanh = prob.mean_objectives(_good_phenome())
        assert f_relu > f_tanh + 0.02

    def test_desc_sigmoid_not_accurate(self):
        _, force = self._problem().mean_objectives(
            _good_phenome(desc_activ_func="sigmoid")
        )
        assert force > FORCE_ACCURACY_EV_PER_A

    def test_linear_scaling_hurts_at_good_start_lr(self):
        prob = self._problem()
        e_none, f_none = prob.mean_objectives(_good_phenome())
        e_lin, f_lin = prob.mean_objectives(
            _good_phenome(scale_by_worker="linear")
        )
        assert f_lin > f_none

    def test_linear_scaling_recoverable_with_small_start_lr(self):
        prob = self._problem()
        _, f = prob.mean_objectives(
            _good_phenome(start_lr=4e-3 / 6.0, scale_by_worker="linear")
        )
        assert f < FORCE_ACCURACY_EV_PER_A

    def test_tradeoff_direction(self):
        """Higher stop/start ratio -> force-led finish: better force,
        worse energy."""
        prob = self._problem()
        e_hi, f_hi = prob.mean_objectives(_good_phenome(stop_lr=1e-4))
        e_lo, f_lo = prob.mean_objectives(_good_phenome(stop_lr=1e-5))
        assert f_hi < f_lo
        assert e_hi > e_lo

    def test_invalid_radii_diverge(self):
        with pytest.raises(TrainingDivergedError):
            self._problem().mean_objectives(
                _good_phenome(rcut=6.0, rcut_smth=6.5)
            )

    def test_extreme_lr_diverges(self):
        with pytest.raises(TrainingDivergedError):
            self._problem().mean_objectives(
                _good_phenome(start_lr=0.05, scale_by_worker="linear")
            )

    def test_evaluation_deterministic_per_phenome(self):
        prob = self._problem()
        f1, _ = prob.evaluate_with_metadata(_good_phenome())
        f2, _ = prob.evaluate_with_metadata(_good_phenome())
        assert np.array_equal(f1, f2)

    def test_different_seed_changes_noise(self):
        f1 = SurrogateDeepMDProblem(seed=1).evaluate(_good_phenome())
        f2 = SurrogateDeepMDProblem(seed=2).evaluate(_good_phenome())
        assert not np.array_equal(f1, f2)

    def test_metadata_contains_runtime_and_phenome(self):
        _, meta = self._problem().evaluate_with_metadata(_good_phenome())
        assert "runtime_minutes" in meta
        assert meta["phenome"]["rcut"] == 11.0

    def test_runtime_grows_with_rcut(self):
        prob = self._problem()
        rts = []
        for rcut in (6.0, 12.0):
            _, meta = prob.evaluate_with_metadata(_good_phenome(rcut=rcut))
            rts.append(meta["runtime_minutes"])
        assert rts[1] > rts[0]

    def test_failure_attaches_short_runtime(self):
        prob = self._problem()
        ind = RobustIndividual(
            DeepMDRepresentation.encode(
                _good_phenome(start_lr=0.05, scale_by_worker="linear")
            ),
            decoder=DeepMDRepresentation.decoder(),
            problem=prob,
        )
        ind.evaluate()
        assert not ind.is_viable
        assert ind.metadata["runtime_minutes"] <= 4.0

    def test_failure_counter(self):
        prob = self._problem()
        ind = RobustIndividual(
            DeepMDRepresentation.encode(
                _good_phenome(rcut=6.0, rcut_smth=5.9)
            ),
            decoder=DeepMDRepresentation.decoder(),
            problem=prob,
        )
        # rcut=6.0, rcut_smth=5.9 is valid; craft truly invalid one
        bad = _good_phenome()
        bad["rcut"] = 6.0
        bad["rcut_smth"] = 6.0  # equal -> undefined
        with pytest.raises(TrainingDivergedError):
            prob.mean_objectives(bad)


class TestDriverAndCampaign:
    def test_single_run_shape(self):
        records = run_deepmd_nsga2(
            SurrogateDeepMDProblem(seed=0),
            settings=NSGA2Settings(pop_size=20, generations=3),
            rng=0,
        )
        assert len(records) == 4
        assert all(len(r.population) == 20 for r in records)

    def test_campaign_runs_and_aggregates(self):
        config = CampaignConfig(
            n_runs=3, pop_size=20, generations=3, base_seed=1
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        assert len(result.runs) == 3
        assert result.n_trainings == 3 * 4 * 20
        assert len(result.last_generation_individuals()) == 60

    def test_campaign_reproducible(self):
        config = CampaignConfig(
            n_runs=2, pop_size=10, generations=2, base_seed=5
        )

        def run():
            return Campaign(
                lambda seed: SurrogateDeepMDProblem(seed=seed), config
            ).run()

        f1 = np.sort(
            np.array(
                [i.fitness for i in run().last_generation_individuals()]
            ),
            axis=0,
        )
        f2 = np.sort(
            np.array(
                [i.fitness for i in run().last_generation_individuals()]
            ),
            axis=0,
        )
        assert np.allclose(f1, f2)

    def test_campaign_runs_are_independent(self):
        config = CampaignConfig(
            n_runs=2, pop_size=10, generations=1, base_seed=5
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        g0 = result.runs[0][0].evaluated_fitness_matrix()
        g1 = result.runs[1][0].evaluated_fitness_matrix()
        assert not np.allclose(np.sort(g0, axis=0), np.sort(g1, axis=0))

    def test_optimization_improves_median_force(self):
        config = CampaignConfig(
            n_runs=2, pop_size=30, generations=4, base_seed=9
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        first = [
            i.fitness[1]
            for i in result.generation_evaluated(0)
            if i.is_viable
        ]
        last = [
            i.fitness[1]
            for i in result.last_generation_individuals()
            if i.is_viable
        ]
        assert np.median(last) < np.median(first)

    def test_frontier_individuals_viable(self):
        config = CampaignConfig(
            n_runs=2, pop_size=20, generations=2, base_seed=3
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        for ind in result.aggregate_pareto_front():
            assert ind.is_viable

    def test_failures_by_generation_length(self):
        config = CampaignConfig(
            n_runs=2, pop_size=15, generations=3, base_seed=3
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), config
        ).run()
        assert len(result.failures_by_generation()) == 4


class TestChemicalAccuracy:
    def _ind(self, energy, force, runtime=None):
        ind = RobustIndividual(np.zeros(7))
        ind.fitness = np.array([energy, force])
        if runtime is not None:
            ind.metadata["runtime_minutes"] = runtime
        return ind

    def test_thresholds_from_paper(self):
        assert ENERGY_ACCURACY_EV_PER_ATOM == 0.004
        assert FORCE_ACCURACY_EV_PER_A == 0.04

    def test_accurate_inside_both_thresholds(self):
        assert chemically_accurate(self._ind(0.001, 0.03))

    def test_inaccurate_when_force_exceeds(self):
        assert not chemically_accurate(self._ind(0.001, 0.05))

    def test_inaccurate_when_energy_exceeds(self):
        assert not chemically_accurate(self._ind(0.01, 0.03))

    def test_failed_never_accurate(self):
        assert not chemically_accurate(self._ind(MAXINT, MAXINT))

    def test_unevaluated_never_accurate(self):
        assert not chemically_accurate(RobustIndividual(np.zeros(7)))

    def test_filter(self):
        pop = [self._ind(0.001, 0.03), self._ind(0.01, 0.03)]
        assert filter_chemically_accurate(pop) == [pop[0]]

    def test_select_representatives(self):
        a = self._ind(0.003, 0.030, runtime=50.0)
        b = self._ind(0.001, 0.035, runtime=70.0)
        c = self._ind(0.002, 0.032, runtime=40.0)
        reps = select_representatives([a, b, c])
        assert reps["lowest_force"] is a
        assert reps["lowest_energy"] is b
        assert reps["lowest_runtime"] is c

    def test_select_when_no_accurate(self):
        reps = select_representatives([self._ind(0.1, 0.5)])
        assert all(v is None for v in reps.values())

    def test_select_without_runtime_metadata(self):
        reps = select_representatives([self._ind(0.001, 0.03)])
        assert reps["lowest_force"] is not None
        assert reps["lowest_runtime"] is None


class TestBaselines:
    def test_random_search_budget(self):
        result = random_search(
            SurrogateDeepMDProblem(seed=0), budget=50, rng=0
        )
        assert result.evaluations == 50
        assert len(result.evaluated) == 50

    def test_grid_search_full_factorial_small(self):
        result = grid_search(
            SurrogateDeepMDProblem(seed=0), points_per_gene=2
        )
        assert result.evaluations == 2**7

    def test_grid_search_budgeted(self):
        result = grid_search(
            SurrogateDeepMDProblem(seed=0),
            points_per_gene=10,
            budget=64,
            rng=0,
        )
        assert result.evaluations == 64
        assert len(result.evaluated) == 64

    def test_grid_nodes_lie_on_lattice(self):
        result = grid_search(
            SurrogateDeepMDProblem(seed=0),
            points_per_gene=3,
            budget=20,
            rng=1,
        )
        axis = np.linspace(6.0, 12.0, 3)  # rcut axis
        for ind in result.evaluated:
            assert np.any(np.isclose(ind.genome[2], axis))

    def test_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            grid_search(SurrogateDeepMDProblem(seed=0), points_per_gene=1)

    def test_weighted_sum_ea_runs(self):
        result = weighted_sum_ea(
            SurrogateDeepMDProblem(seed=0),
            pop_size=10,
            generations=2,
            rng=0,
        )
        assert result.evaluations == 30
        viable = [i for i in result.evaluated if i.is_viable]
        assert viable

    def test_weighted_sum_invalid_weight(self):
        with pytest.raises(ValueError):
            weighted_sum_ea(
                SurrogateDeepMDProblem(seed=0), weight_energy=1.5
            )

    def test_nsga2_beats_random_search_at_equal_budget(self):
        """The headline claim: the EA needs far fewer evaluations than
        undirected search to reach the accurate region."""
        budget_pop, gens = 20, 4
        records = run_deepmd_nsga2(
            SurrogateDeepMDProblem(seed=0),
            settings=NSGA2Settings(pop_size=budget_pop, generations=gens),
            rng=0,
        )
        ea_last = [i for i in records[-1].population if i.is_viable]
        rs = random_search(
            SurrogateDeepMDProblem(seed=0),
            budget=budget_pop * (gens + 1),
            rng=0,
        )
        rs_viable = [i for i in rs.evaluated if i.is_viable]
        ea_force = np.median([i.fitness[1] for i in ea_last])
        rs_force = np.median([i.fitness[1] for i in rs_viable])
        assert ea_force < rs_force

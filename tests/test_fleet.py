"""Elastic fleet tests: preemption survival, speculation, autoscale.

Three layers, cheapest first:

* pool-level revocation (the ``revoke_worker`` chaos kind): the worker
  is removed without respawn, its in-flight task requeued to a
  survivor and re-executed under the same task id — the
  ``requeued_elsewhere`` trace invariant holds;
* fleet-level behaviour on fast in-process fake members: routing,
  member-to-member requeue, speculation from ``straggler_summary``
  telemetry, duplicate discard, autoscale hysteresis;
* full campaigns: a ``--backend fleet`` run under a seeded preemption
  storm is bit-identical to inline (the suite's equivalence currency:
  sorted (genome, fitness) pairs plus the Pareto front), including
  across a kill → resume mid-storm.

Spawn-started pool workers re-import referenced classes, so problems
used with real pools come from ``repro`` itself.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import Fault, FaultPlan, InvariantChecker
from repro.engine import (
    ElasticBackend,
    EvaluationEngine,
    InlineBackend,
    ProcessPoolBackend,
)
from repro.engine.fleet import FleetFuture
from repro.evo.individual import MAXINT
from repro.exceptions import WorkerRevoked
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.injection import use_injector
from repro.obs import Tracer, use_tracer
from repro.obs.metrics import MetricsRegistry

SRC = str(Path(__file__).resolve().parent.parent / "src")

CFG = CampaignConfig(n_runs=1, pop_size=6, generations=2, base_seed=11)


def _surrogate_individuals(n, seed=0):
    from repro.evo.algorithm import random_initial_population
    from repro.hpo.representation import DeepMDRepresentation

    return random_initial_population(
        n,
        DeepMDRepresentation.init_ranges,
        SurrogateDeepMDProblem(seed=seed),
        decoder=DeepMDRepresentation.decoder(),
        rng=seed,
    )


def _evals(result):
    return sorted(
        (
            tuple(float(g) for g in ind.genome),
            tuple(float(f) for f in np.atleast_1d(ind.fitness)),
        )
        for run in result.runs
        for rec in run
        for ind in rec.evaluated
    )


def _front(result):
    return sorted(
        (tuple(ind.genome), tuple(ind.fitness))
        for ind in result.aggregate_pareto_front()
    )


def _drain(engine):
    """Collect every submitted candidate as it resolves."""
    done = []
    while True:
        got = engine.wait_any(timeout=60)
        if not got:
            break
        done.extend(got)
    return done


# ----------------------------------------------------------------------
# fast in-process fakes (no interpreter startup)
# ----------------------------------------------------------------------
class FakeFuture:
    def __init__(self):
        self._resolved = False
        self._result = None
        self._exc = None
        self.cancelled = False

    def resolve(self, result=None, exc=None):
        self._resolved = True
        self._result = result
        self._exc = exc

    def done(self):
        return self._resolved

    def result(self, timeout=None):
        if self._exc is not None:
            raise self._exc
        return self._result

    def cancel(self):
        self.cancelled = True


class FakeMember:
    """A member backend the test resolves by hand."""

    is_execution_backend = True

    def __init__(self, n_workers=2):
        self.n_workers = n_workers
        self.submitted = []

    def submit(self, individual):
        future = FakeFuture()
        self.submitted.append((individual, future))
        return future

    def submit_batch(self, individuals):
        future = FakeFuture()
        self.submitted.append((list(individuals), future))
        return future

    def on_cache_hit(self, individual):
        pass


def _fake_fleet(n_members=2, **kwargs):
    members = [FakeMember() for _ in range(n_members)]
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("autoscale_interval", None)
    return ElasticBackend(members, **kwargs), members


# ----------------------------------------------------------------------
# pool-level revocation (the new chaos kind)
# ----------------------------------------------------------------------
class TestPoolRevocation:
    def test_revoked_task_requeued_on_survivor(self):
        """Revoking a worker mid-task shrinks the pool (no respawn) and
        re-executes its task on a survivor — every result viable, and
        the requeued-elsewhere trace invariant holds."""
        plan = FaultPlan(
            [Fault(kind="revoke_worker", at=0, worker="pool-0")]
        )
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_injector(plan.injector()) as injector, use_tracer(tracer):
            with ProcessPoolBackend(workers=2, metrics=registry) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(5))
                survivors = pool.n_workers
        assert all(ind.is_viable for ind in done)
        assert survivors == 1
        assert registry.counter("pool_workers_revoked_total").value == 1
        assert registry.counter("pool_tasks_requeued_total").value == 1
        (revoked,) = tracer.events("pool.worker_revoked")
        assert revoked["tags"]["worker"] == "pool-0"
        (requeued,) = tracer.events("task.requeued")
        assert requeued["tags"]["from_worker"] == "pool-0"
        assert requeued["tags"]["attempt"] == 1
        report = InvariantChecker(
            trace=tracer.records, injected=injector.log
        ).check()
        assert report.ok, report.summary()
        assert report.checked.get("requeued_elsewhere", 0) >= 1

    def test_last_worker_revoked_fails_with_worker_revoked(self):
        """With no survivor the pool cannot requeue: the task fails
        with WorkerRevoked, which the engine maps to MAXINT."""
        plan = FaultPlan([Fault(kind="revoke_worker", at=1)])
        with use_injector(plan.injector()):
            with ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(3))
                survivors = pool.n_workers
        assert survivors == 0
        failed = [ind for ind in done if not ind.is_viable]
        assert failed and all(
            np.all(ind.fitness == MAXINT) for ind in failed
        )

    def test_scale_up_and_down(self):
        """scale_to grows with fresh worker names (indices are never
        reused — the requeued-elsewhere invariant keys on names) and
        retires idle workers on shrink."""
        tracer = Tracer()
        with use_tracer(tracer):
            with ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                assert pool.scale_to(3) == 3
                names = [h.name for h in pool._workers]
                assert names == ["pool-0", "pool-1", "pool-2"]
                assert pool.scale_to(1) == 1
                engine = EvaluationEngine(
                    client=pool, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(3))
                # grow again: new workers get fresh indices
                pool.scale_to(2)
                regrown = [h.name for h in pool._workers]
        assert all(ind.is_viable for ind in done)
        assert len(regrown) == 2 and "pool-3" in regrown
        assert tracer.events("pool.scale_up")
        assert tracer.events("pool.scale_down")

    def test_revoke_worker_api_without_chaos(self):
        """Operational revocation (no injector): the explicit API used
        by the fleet walkthrough drains exactly like the chaos kind."""
        with ProcessPoolBackend(
            workers=2, metrics=MetricsRegistry()
        ) as pool:
            engine = EvaluationEngine(
                client=pool, metrics=MetricsRegistry()
            )
            for ind in _surrogate_individuals(4):
                engine.submit(ind)
            name = pool.revoke_worker()
            done = _drain(engine)
        assert name in ("pool-0", "pool-1")
        assert len(done) == 4
        assert all(ind.is_viable for ind in done)


# ----------------------------------------------------------------------
# fleet routing & requeue (fake members)
# ----------------------------------------------------------------------
class TestFleetRouting:
    def test_least_loaded_routing(self):
        fleet, (a, b) = _fake_fleet()
        fleet.submit("x1")
        fleet.submit("x2")
        assert len(a.submitted) == 1 and len(b.submitted) == 1

    def test_inline_member_is_reserve(self):
        fleet = ElasticBackend(
            [FakeMember(), InlineBackend()],
            metrics=MetricsRegistry(),
            autoscale_interval=None,
        )
        assert [m.reserve for m in fleet.members] == [False, True]
        # reserve capacity is rescue-only: not counted
        assert fleet.capacity() == 2

    def test_revoked_task_requeued_to_other_member(self):
        fleet, (a, b) = _fake_fleet()
        future = fleet.submit("x")
        a.submitted[0][1].resolve(exc=WorkerRevoked("w", "revoked"))
        assert not future.done()  # pump requeued instead of failing
        assert len(b.submitted) == 1
        b.submitted[0][1].resolve(result=((1.0,), {}))
        assert future.result(timeout=1) == ((1.0,), {})
        snap = fleet.fleet_snapshot()
        assert snap["requeued"] == 1

    def test_requeue_exhaustion_surfaces_worker_revoked(self):
        fleet, (a,) = _fake_fleet(n_members=1)
        future = fleet.submit("x")
        a.submitted[0][1].resolve(exc=WorkerRevoked("w", "revoked"))
        with pytest.raises(WorkerRevoked):
            future.result(timeout=1)

    def test_non_revocation_failure_is_not_requeued(self):
        """Ordinary worker crashes keep pool-alone semantics: the
        engine's MAXINT policy, not a silent retry."""
        fleet, (a, b) = _fake_fleet()
        future = fleet.submit("x")
        a.submitted[0][1].resolve(exc=RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            future.result(timeout=1)
        assert len(b.submitted) == 0

    def test_batch_requeue_carries_whole_chunk(self):
        fleet, (a, b) = _fake_fleet()
        future = fleet.submit_batch(["x1", "x2"])
        assert isinstance(future, FleetFuture)
        a.submitted[0][1].resolve(exc=WorkerRevoked("w", "revoked"))
        future.done()
        assert b.submitted and b.submitted[0][0] == ["x1", "x2"]

    def test_closed_fleet_rejects_submissions(self):
        fleet, _ = _fake_fleet()
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.submit("x")


# ----------------------------------------------------------------------
# speculation
# ----------------------------------------------------------------------
class TestSpeculation:
    def test_threshold_comes_from_straggler_summary(self):
        """With worker.task spans in the trace, the straggler threshold
        is straggler_factor × the telemetry's mean task duration."""
        tracer = Tracer()
        for i in range(4):
            tracer.ingest(
                {
                    "type": "span",
                    "name": "worker.task",
                    "mono": float(i),
                    "dur": 0.1,
                    "tags": {"task": f"t{i}", "worker": "pool-0"},
                }
            )
        fleet, _ = _fake_fleet(
            speculate=True,
            tracer=tracer,
            straggler_factor=3.0,
            min_speculate_s=0.0,
        )
        threshold = fleet.speculation_threshold()
        assert threshold == pytest.approx(0.3, rel=1e-6)

    def test_no_history_no_speculation(self):
        fleet, (a, b) = _fake_fleet(
            speculate=True, min_speculate_s=0.0, straggler_factor=0.0
        )
        fleet.submit("x")
        fleet._pump()
        assert fleet.speculation_threshold() is None
        assert len(a.submitted) + len(b.submitted) == 1

    def _speculating_fleet(self):
        """A fleet whose next unresolved task speculates immediately."""
        fleet, members = _fake_fleet(
            speculate=True,
            min_history=1,
            straggler_factor=0.0,
            min_speculate_s=0.0,
        )
        warm = fleet.submit("warm")
        members[0].submitted[0][1].resolve(result=((0.0,), {}))
        assert warm.result(timeout=1) == ((0.0,), {})
        return fleet, members

    def test_straggler_speculated_and_spec_win_counted(self):
        fleet, (a, b) = self._speculating_fleet()
        future = fleet.submit("slow")  # ties route to a (member-0)
        fleet._pump()  # past threshold -> speculate on b
        assert len(a.submitted) == 2 and len(b.submitted) == 1
        assert (
            fleet._c_spec.value == 1
        ), "speculation must be counted when dispatched"
        b.submitted[0][1].resolve(result=((2.0,), {}))
        assert future.result(timeout=1) == ((2.0,), {})
        assert fleet._c_spec_wins.value == 1
        # the loser (the straggling primary) was cancelled
        assert a.submitted[1][1].cancelled
        snap = fleet.fleet_snapshot()
        assert snap["speculative_wins"] == 1

    def test_duplicate_result_discarded(self):
        fleet, (a, b) = self._speculating_fleet()
        future = fleet.submit("slow")
        fleet._pump()
        # primary wins; the speculative copy later completes anyway
        a.submitted[1][1].resolve(result=((1.0,), {}))
        assert future.result(timeout=1) == ((1.0,), {})
        assert fleet._c_spec_wins.value == 0
        b.submitted[0][1].resolve(result=((1.0,), {}))
        fleet._pump()
        assert fleet._c_duplicates.value == 1
        assert sum(m.inflight for m in fleet.members) == 0

    def test_failed_speculation_never_outranks_primary(self):
        fleet, (a, b) = self._speculating_fleet()
        future = fleet.submit("slow")
        fleet._pump()
        b.submitted[0][1].resolve(exc=RuntimeError("spec died"))
        fleet._pump()
        assert not future.done()
        a.submitted[1][1].resolve(result=((1.0,), {}))
        assert future.result(timeout=1) == ((1.0,), {})

    def test_engine_fresh_count_unchanged_by_speculation(self):
        """A speculative duplicate must not inflate EngineStats: the
        engine sees one future per uuid, so fresh == population size
        whether or not speculation fired."""
        tracer = Tracer()
        with use_tracer(tracer):
            with ProcessPoolBackend(
                workers=1, metrics=MetricsRegistry()
            ) as pool:
                fleet = ElasticBackend(
                    [pool, InlineBackend()],
                    speculate=True,
                    min_history=1,
                    straggler_factor=0.0,
                    min_speculate_s=0.0,
                    autoscale_interval=None,
                    metrics=MetricsRegistry(),
                )
                engine = EvaluationEngine(
                    client=fleet, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(5))
        assert all(ind.is_viable for ind in done)
        assert engine.stats.fresh == 5
        assert engine.stats.completed == 5
        # pool tasks beat the warm inline threshold rarely; whatever
        # speculation happened, wins + primaries == 5 resolutions
        snap = fleet.fleet_snapshot()
        assert snap["in_flight"] == 0


# ----------------------------------------------------------------------
# autoscale
# ----------------------------------------------------------------------
class TestAutoscale:
    def test_sustained_pressure_scales_up_to_max(self):
        with ProcessPoolBackend(
            workers=1, metrics=MetricsRegistry()
        ) as pool:
            fleet = ElasticBackend(
                [pool],
                min_workers=1,
                max_workers=3,
                autoscale_interval=None,
                sustain_ticks=2,
                metrics=MetricsRegistry(),
            )
            engine = EvaluationEngine(
                client=fleet, metrics=MetricsRegistry()
            )
            for ind in _surrogate_individuals(8):
                engine.submit(ind)
            # a single pressure observation must not rescale
            fleet.autoscale_tick()
            assert pool.n_workers == 1
            fleet.autoscale_tick()
            grown = pool.n_workers
            done = _drain(engine)
        assert grown > 1 and grown <= 3
        assert all(ind.is_viable for ind in done)
        assert fleet._c_scale_up.value >= 1

    def test_sustained_idle_scales_down_to_min(self):
        with ProcessPoolBackend(
            workers=3, metrics=MetricsRegistry()
        ) as pool:
            fleet = ElasticBackend(
                [pool],
                min_workers=1,
                max_workers=3,
                autoscale_interval=None,
                sustain_ticks=1,
                metrics=MetricsRegistry(),
            )
            for _ in range(4):
                fleet.autoscale_tick()
            shrunk = pool.n_workers
        assert shrunk == 1
        assert fleet._c_scale_down.value >= 1

    def test_slots_cap_bounds_growth(self):
        with ProcessPoolBackend(
            workers=1, metrics=MetricsRegistry()
        ) as pool:
            fleet = ElasticBackend(
                [pool],
                min_workers=1,
                max_workers=8,
                slots_cap=2,
                autoscale_interval=None,
                sustain_ticks=1,
                metrics=MetricsRegistry(),
            )
            engine = EvaluationEngine(
                client=fleet, metrics=MetricsRegistry()
            )
            for ind in _surrogate_individuals(8):
                engine.submit(ind)
            fleet.autoscale_tick()
            capped = pool.n_workers
            done = _drain(engine)
        assert capped <= 2
        assert all(ind.is_viable for ind in done)

    def test_n_workers_tracks_live_capacity(self):
        fleet, (a, b) = _fake_fleet()
        assert fleet.n_workers == 4
        a.n_workers = 0
        assert fleet.n_workers == 2


# ----------------------------------------------------------------------
# campaign equivalence under preemption storms
# ----------------------------------------------------------------------
class TestFleetCampaignEquivalence:
    def test_fleet_front_matches_inline_under_revocation_storm(self):
        """A fleet campaign under a seeded preemption storm produces
        exactly the evaluations and front of the inline campaign —
        revocations move work, never change it — with zero invariant
        violations and the storm visible in the trace."""
        inline = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), CFG
        ).run()
        # revoke-only plan: every revocation is recoverable by the
        # fleet, so results must be bit-identical (worker_death is
        # not — a bare crash becomes MAXINT by design)
        plan = FaultPlan.random(
            42,
            kinds=("revoke_worker",),
            n_faults=2,
            horizon=8,
        )
        assert plan.kinds() == {"revoke_worker"}
        tracer = Tracer()
        with use_injector(plan.injector()) as injector, use_tracer(tracer):
            with ProcessPoolBackend(
                workers=2, metrics=MetricsRegistry()
            ) as pool:
                fleet = ElasticBackend(
                    [pool, InlineBackend()],
                    autoscale_interval=None,
                    metrics=MetricsRegistry(),
                )
                stormed = Campaign(
                    lambda seed: SurrogateDeepMDProblem(seed=seed),
                    CFG,
                    client=fleet,
                ).run()
        assert injector.fired("revoke_worker"), "storm must have fired"
        assert tracer.events("pool.worker_revoked")
        assert _evals(stormed) == _evals(inline)
        assert _front(stormed) == _front(inline)
        report = InvariantChecker(
            trace=tracer.records, injected=injector.log
        ).check()
        assert report.ok, report.summary()

    def test_fleet_survives_total_pool_loss(self):
        """Revoking every pool worker reroutes to the inline reserve:
        the campaign still completes with zero MAXINT scores."""
        plan = FaultPlan(
            [
                Fault(kind="revoke_worker", at=0, worker="pool-0"),
                Fault(kind="revoke_worker", at=0, worker="pool-1"),
            ]
        )
        tracer = Tracer()
        with use_injector(plan.injector()), use_tracer(tracer):
            with ProcessPoolBackend(
                workers=2, metrics=MetricsRegistry()
            ) as pool:
                fleet = ElasticBackend(
                    [pool, InlineBackend()],
                    autoscale_interval=None,
                    metrics=MetricsRegistry(),
                )
                engine = EvaluationEngine(
                    client=fleet, metrics=MetricsRegistry()
                )
                done = engine.evaluate(_surrogate_individuals(6))
                survivors = pool.n_workers
        assert survivors == 0
        assert all(ind.is_viable for ind in done)
        assert fleet.fleet_snapshot()["requeued"] >= 1


# ----------------------------------------------------------------------
# kill → resume mid-storm, end to end through the CLI
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFleetKillResume:
    def _run_cli(self, args, cwd):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.hpo.cli", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_fleet_kill_resume_matches_inline(self, tmp_path):
        common = [
            "campaign",
            "--runs", "1",
            "--pop-size", "6",
            "--generations", "3",
            "--seed", "7",
        ]
        base = self._run_cli(common + ["--save", "base"], cwd=tmp_path)
        assert base.returncode == 0, base.stderr
        killed = self._run_cli(
            common
            + [
                "--save", "killed",
                "--backend", "fleet",
                "--pool-workers", "2",
                "--chaos-revoke", "1,3",
                "--kill-after-evals", "12",
            ],
            cwd=tmp_path,
        )
        assert killed.returncode == 137, killed.stderr
        assert (tmp_path / "killed" / "chaos_plan_revoke.json").exists()
        resumed = self._run_cli(
            [
                "resume", "killed",
                "--backend", "fleet",
                "--pool-workers", "2",
                "--chaos-revoke", "1",
            ],
            cwd=tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr

        from repro.io import load_campaign

        a = load_campaign(tmp_path / "base")
        b = load_campaign(tmp_path / "killed")

        def points(c):
            from repro.mo.pareto import pareto_front

            return sorted(
                (
                    tuple(float(g) for g in ind.genome),
                    tuple(float(f) for f in ind.fitness),
                )
                for ind in pareto_front(c.last_generation_individuals())
            )

        assert points(a) == points(b)

"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic properties that unit tests with fixed inputs
cannot: sorting equivalence on arbitrary fitness matrices, Pareto-front
definitions, decoder totality, switching-function smoothness, periodic
geometry, and hypervolume monotonicity.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff.tensor import Tensor
from repro.deepmd.descriptor import smooth_switch
from repro.evo.decoder import floor_mod_choice
from repro.evo.individual import MAXINT
from repro.evo.nsga2 import (
    crowding_distance,
    dominates,
    fast_nondominated_sort,
    rank_ordinal_sort,
)
from repro.md.cell import PeriodicCell
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
fitness_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(1, 40), st.integers(2, 4)
    ),
    elements=st.floats(
        min_value=-100.0, max_value=100.0, allow_nan=False
    ),
)

# heavy-tie matrices: small integer grids force many duplicates
tied_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 30), st.just(2)),
    elements=st.integers(0, 4).map(float),
)


class TestSortingProperties:
    @given(fitness_matrices)
    @settings(max_examples=150, deadline=None)
    def test_rank_ordinal_equals_fast_sort(self, F):
        assert np.array_equal(
            rank_ordinal_sort(F), fast_nondominated_sort(F)
        )

    @given(tied_matrices)
    @settings(max_examples=150, deadline=None)
    def test_rank_ordinal_equals_fast_sort_with_ties(self, F):
        assert np.array_equal(
            rank_ordinal_sort(F), fast_nondominated_sort(F)
        )

    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_rank_one_iff_non_dominated(self, F):
        ranks = rank_ordinal_sort(F)
        mask = non_dominated_mask(F)
        assert np.array_equal(ranks == 1, mask)

    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_ranks_contiguous_from_one(self, F):
        ranks = rank_ordinal_sort(F)
        present = np.unique(ranks)
        assert np.array_equal(present, np.arange(1, len(present) + 1))

    @given(tied_matrices)
    @settings(max_examples=100, deadline=None)
    def test_dominance_implies_strictly_lower_rank(self, F):
        ranks = rank_ordinal_sort(F)
        n = len(F)
        for i in range(min(n, 10)):
            for j in range(min(n, 10)):
                if dominates(F[i], F[j]):
                    assert ranks[i] < ranks[j]

    @given(fitness_matrices)
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariance(self, F):
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(F))
        ranks = rank_ordinal_sort(F)
        ranks_perm = rank_ordinal_sort(F[perm])
        assert np.array_equal(ranks[perm], ranks_perm)

    @given(tied_matrices)
    @settings(max_examples=50, deadline=None)
    def test_equal_fitness_equal_rank(self, F):
        ranks = rank_ordinal_sort(F)
        for i in range(len(F)):
            same = np.all(F == F[i], axis=1)
            assert len(set(ranks[same])) == 1

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 20), st.just(2)),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_maxint_failures_always_worst_front(self, F):
        assume(np.all(F < 1e6))
        failures = np.full((3, 2), MAXINT)
        combined = np.vstack([F, failures])
        ranks = rank_ordinal_sort(combined)
        # every finite row ranks strictly better than the failures
        assert ranks[: len(F)].max() < ranks[len(F) :].min()


class TestCrowdingProperties:
    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_distances_non_negative(self, F):
        ranks = rank_ordinal_sort(F)
        d = crowding_distance(F, ranks)
        assert np.all((d >= 0) | np.isinf(d))

    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_no_nans(self, F):
        ranks = rank_ordinal_sort(F)
        assert not np.isnan(crowding_distance(F, ranks)).any()

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 20), st.just(2)),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_objective_extremes_infinite(self, F):
        ranks = rank_ordinal_sort(F)
        d = crowding_distance(F, ranks)
        first = ranks == 1
        sub = F[first]
        dsub = d[first]
        if first.sum() >= 2:
            assert np.isinf(dsub[np.argmin(sub[:, 0])])
            assert np.isinf(dsub[np.argmax(sub[:, 0])])


class TestParetoProperties:
    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_front_members_mutually_nondominating(self, F):
        mask = non_dominated_mask(F)
        front = F[mask]
        for i in range(len(front)):
            for j in range(len(front)):
                assert not dominates(front[i], front[j])

    @given(fitness_matrices)
    @settings(max_examples=100, deadline=None)
    def test_every_dominated_point_has_dominator_on_front(self, F):
        mask = non_dominated_mask(F)
        front = F[mask]
        for i in np.where(~mask)[0]:
            assert any(dominates(f, F[i]) for f in front)

    @given(fitness_matrices)
    @settings(max_examples=50, deadline=None)
    def test_front_idempotent(self, F):
        mask = non_dominated_mask(F)
        front = F[mask]
        assert non_dominated_mask(front).all()


class TestHypervolumeProperties:
    points_2d = hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 15), st.just(2)),
        elements=st.floats(0.0, 0.99, allow_nan=False),
    )

    @given(points_2d)
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_reference_box(self, F):
        hv = hypervolume_2d(F, (1.0, 1.0))
        assert 0.0 <= hv <= 1.0

    @given(points_2d, st.integers(0, 14))
    @settings(max_examples=100, deadline=None)
    def test_monotone_under_addition(self, F, k):
        hv_all = hypervolume_2d(F, (1.0, 1.0))
        subset = np.delete(F, k % len(F), axis=0)
        hv_subset = hypervolume_2d(subset, (1.0, 1.0))
        assert hv_all >= hv_subset - 1e-12

    @given(points_2d)
    @settings(max_examples=50, deadline=None)
    def test_dominated_points_contribute_nothing(self, F):
        mask = non_dominated_mask(F)
        assert np.isclose(
            hypervolume_2d(F, (1.0, 1.0)),
            hypervolume_2d(F[mask], (1.0, 1.0)),
        )


class TestDecoderProperties:
    @given(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False
        ),
        st.integers(1, 10),
    )
    def test_floor_mod_total_and_in_range(self, value, n):
        choices = [f"c{i}" for i in range(n)]
        assert floor_mod_choice(value, choices) in choices

    @given(st.integers(0, 9), st.floats(0.0, 0.999))
    def test_floor_mod_stable_within_unit_interval(self, k, frac):
        """All values in [k, k+1) decode identically."""
        choices = ["a", "b", "c"]
        assert floor_mod_choice(k + frac, choices) == floor_mod_choice(
            float(k), choices
        )

    @given(st.floats(-100.0, 100.0, allow_nan=False), st.integers(1, 7))
    def test_floor_mod_periodic(self, value, n):
        # stay away from integer boundaries where value + n can round
        # across the floor step in floating point
        assume(abs(value - round(value)) > 1e-6)
        choices = [f"c{i}" for i in range(n)]
        assert floor_mod_choice(value, choices) == floor_mod_choice(
            value + n, choices
        )


class TestSwitchFunctionProperties:
    @given(
        st.floats(0.01, 20.0),
        st.floats(0.5, 5.0),
        st.floats(0.5, 6.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_switch_bounded_and_nonnegative(self, r, rcut_smth, span):
        rcut = rcut_smth + span
        s = smooth_switch(Tensor([r]), rcut, rcut_smth).data[0]
        assert 0.0 <= s <= 1.0 / min(r, rcut_smth) + 1e-9

    @given(st.floats(0.5, 5.0), st.floats(0.5, 6.0))
    @settings(max_examples=100, deadline=None)
    def test_switch_zero_outside(self, rcut_smth, span):
        rcut = rcut_smth + span
        s = smooth_switch(
            Tensor([rcut + 0.1, rcut * 2]), rcut, rcut_smth
        ).data
        assert np.allclose(s, 0.0)

    @given(st.floats(1.0, 4.0))
    @settings(max_examples=50, deadline=None)
    def test_switch_monotone_decreasing(self, rcut_smth):
        rcut = rcut_smth + 3.0
        rs = np.linspace(rcut_smth * 0.5, rcut + 0.5, 200)
        s = smooth_switch(Tensor(rs), rcut, rcut_smth).data
        assert np.all(np.diff(s) <= 1e-12)


class TestPeriodicCellProperties:
    @given(
        st.floats(2.0, 50.0),
        hnp.arrays(
            dtype=np.float64,
            shape=(3,),
            elements=st.floats(-200.0, 200.0, allow_nan=False),
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_minimum_image_within_half_box(self, L, d):
        cell = PeriodicCell(L)
        m = cell.minimum_image(d)
        assert np.all(np.abs(m) <= L / 2 + 1e-9)

    @given(
        st.floats(2.0, 50.0),
        hnp.arrays(
            dtype=np.float64,
            shape=(3,),
            elements=st.floats(-200.0, 200.0, allow_nan=False),
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_wrap_into_box(self, L, p):
        cell = PeriodicCell(L)
        w = cell.wrap(p)
        assert np.all(w >= 0.0) and np.all(w < L + 1e-9)

    @given(
        st.floats(2.0, 50.0),
        hnp.arrays(
            dtype=np.float64,
            shape=(3,),
            elements=st.floats(-100.0, 100.0, allow_nan=False),
        ),
        hnp.arrays(
            dtype=np.float64,
            shape=(3,),
            elements=st.floats(-2.0, 2.0, allow_nan=False),
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_distance_translation_invariant(self, L, a, shift):
        cell = PeriodicCell(L)
        b = a + np.array([1.0, 0.5, 0.25])
        d1 = cell.distance(a, b)
        d2 = cell.distance(a + shift * L, b + shift * L)
        assert np.isclose(d1, d2, atol=1e-6)

    @given(st.floats(2.0, 20.0), st.floats(0.1, 30.0))
    @settings(max_examples=100, deadline=None)
    def test_image_shifts_cover_cutoff(self, L, cutoff):
        cell = PeriodicCell(L)
        shifts = cell.image_shifts(cutoff)
        # the largest shift magnitude must reach at least the cutoff
        max_reach = np.abs(shifts).max() + L / 2
        assert max_reach >= min(cutoff, np.abs(shifts).max() + L / 2)
        # zero shift always included
        assert np.any(np.all(shifts == 0.0, axis=1))


class TestLandscapeProperties:
    @given(
        st.floats(1e-7, 0.0099),
        st.floats(1e-7, 9.9e-5),
        st.floats(6.01, 12.0),
        st.floats(2.0, 5.99),
        st.sampled_from(["linear", "sqrt", "none"]),
        st.sampled_from(
            ["relu", "relu6", "softplus", "sigmoid", "tanh"]
        ),
        st.sampled_from(
            ["relu", "relu6", "softplus", "sigmoid", "tanh"]
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_objectives_positive_or_divergent(
        self, start_lr, stop_lr, rcut, rcut_smth, scale, desc, fit
    ):
        from repro.exceptions import TrainingDivergedError
        from repro.hpo.landscape import SurrogateDeepMDProblem

        prob = SurrogateDeepMDProblem(seed=0)
        phenome = {
            "start_lr": start_lr,
            "stop_lr": stop_lr,
            "rcut": rcut,
            "rcut_smth": rcut_smth,
            "scale_by_worker": scale,
            "desc_activ_func": desc,
            "fitting_activ_func": fit,
        }
        try:
            energy, force = prob.mean_objectives(phenome)
        except TrainingDivergedError:
            return
        assert energy > 0.0 and force > 0.0
        assert np.isfinite(energy) and np.isfinite(force)

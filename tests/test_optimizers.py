"""The optimizer zoo: PSO and surrogate drivers, objective selection,
and the hypervolume early stop.

Every driver behind ``repro-hpo run --mode ...`` honours one contract:
evaluations flow through the engine (dedup/cache/journal/MAXINT),
records are :class:`~repro.evo.algorithm.GenerationRecord` streams the
§3 analysis stack consumes unchanged, and a killed run resumes
bit-identically from the write-ahead journal.  These tests pin that
contract for the two new drivers, the ``--objectives`` third-objective
extension, and the ``HypervolumeStopper`` prefix-identity guarantee.
"""

import json

import numpy as np
import pytest

from repro.evo.individual import MAXINT
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.driver import (
    NSGA2Settings,
    run_deepmd_nsga2,
    run_deepmd_pso,
    run_deepmd_surrogate,
)
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.objectives import (
    BASE_OBJECTIVES,
    KNOWN_OBJECTIVES,
    RuntimeCostProblem,
    parse_objectives,
    reference_point,
    with_objectives,
)
from repro.store.journal import CampaignJournal, journal_path
from repro.store.resume import resume_campaign


def _genomes(records):
    return [
        [tuple(float(g) for g in ind.genome) for ind in rec.population]
        for rec in records
    ]


def _fitnesses(records):
    return [
        [tuple(float(f) for f in ind.fitness) for ind in rec.population]
        for rec in records
    ]


# ----------------------------------------------------------------------
# objective selection
# ----------------------------------------------------------------------
class TestParseObjectives:
    def test_default_is_the_paper_pair(self):
        assert parse_objectives(None) == BASE_OBJECTIVES
        assert parse_objectives("") == BASE_OBJECTIVES
        assert parse_objectives("loss") == BASE_OBJECTIVES

    def test_time_aliases_extend_with_runtime(self):
        for spec in ("loss,time", "loss,cost", "loss,runtime", "time"):
            assert parse_objectives(spec) == (
                "energy",
                "force",
                "runtime",
            )

    def test_sequence_input(self):
        assert parse_objectives(["energy", "force", "runtime"]) == (
            "energy",
            "force",
            "runtime",
        )

    def test_canonical_order_is_stable(self):
        assert parse_objectives("time,loss") == parse_objectives(
            "loss,time"
        )

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            parse_objectives("loss,accuracy")

    def test_reference_point_widths(self):
        assert len(reference_point(BASE_OBJECTIVES)) == 2
        assert len(reference_point(KNOWN_OBJECTIVES)) == 3


class TestRuntimeCostProblem:
    def test_base_selection_returns_problem_unchanged(self):
        problem = SurrogateDeepMDProblem(seed=3)
        assert with_objectives(problem, None) is problem
        assert with_objectives(problem, BASE_OBJECTIVES) is problem

    def test_third_objective_is_predicted_runtime(self):
        from repro.engine import call_problem
        from repro.hpc.runtime_model import TrainingRuntimeModel

        problem = with_objectives(
            SurrogateDeepMDProblem(seed=3), "loss,time"
        )
        assert problem.n_objectives == 3
        from repro.hpo.representation import DeepMDRepresentation

        inner = SurrogateDeepMDProblem(seed=3)
        decoder = DeepMDRepresentation.decoder()
        genome = np.array([1e-3, 5e-5, 7.0, 3.0, 1.0, 2.0, 2.0])
        phenome = decoder.decode(genome)
        phenome["rcut"] = 7.0
        fit3, meta = call_problem(problem, phenome)
        fit2, _ = call_problem(inner, phenome)
        assert np.allclose(fit3[:2], fit2)
        expected = TrainingRuntimeModel().mean_runtime_minutes(7.0)
        assert fit3[2] == pytest.approx(expected)
        assert meta["cost_minutes"] == pytest.approx(expected)

    def test_cost_is_deterministic_in_rcut(self):
        problem = RuntimeCostProblem(SurrogateDeepMDProblem(seed=3))
        a = problem.cost_minutes({"rcut": 9.0})
        b = problem.cost_minutes({"rcut": 9.0})
        assert a == b
        assert problem.cost_minutes({"rcut": 12.0}) > a

    def test_cache_fingerprint_differs_from_two_objective(self):
        inner = SurrogateDeepMDProblem(seed=3)
        wrapped = with_objectives(
            SurrogateDeepMDProblem(seed=3), "loss,time"
        )
        assert wrapped.cache_fingerprint() != inner.cache_fingerprint()


# ----------------------------------------------------------------------
# driver contracts
# ----------------------------------------------------------------------
def _settings(pop=6, gens=3):
    return NSGA2Settings(pop_size=pop, generations=gens)


class TestPSODriver:
    def test_budget_and_record_stream(self):
        records = run_deepmd_pso(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        assert len(records) == 4
        assert [r.generation for r in records] == [0, 1, 2, 3]
        assert all(len(r.evaluated) == 6 for r in records)
        assert all(len(r.population) == 6 for r in records)
        assert all(
            ind.fitness is not None
            for r in records
            for ind in r.evaluated
        )

    def test_deterministic_given_seed(self):
        a = run_deepmd_pso(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        b = run_deepmd_pso(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        assert _genomes(a) == _genomes(b)
        assert _fitnesses(a) == _fitnesses(b)

    def test_population_is_elitist_nondominated_pool(self):
        records = run_deepmd_pso(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        # the selected pool never regresses: final hypervolume >= gen-0
        from repro.mo.metrics import hypervolume

        def hv(rec):
            F = np.asarray(
                [
                    ind.fitness
                    for ind in rec.population
                    if ind.is_viable
                ]
            )
            return hypervolume(F, (0.02, 0.2))

        assert hv(records[-1]) >= hv(records[0]) - 1e-15

    def test_velocity_std_column(self):
        records = run_deepmd_pso(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        assert np.all(records[0].std == 0.0)  # swarm starts at rest
        assert records[1].std.shape == records[0].std.shape


class TestSurrogateDriver:
    def test_budget_and_record_stream(self):
        records = run_deepmd_surrogate(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        assert len(records) == 4
        assert all(len(r.evaluated) == 6 for r in records)

    def test_deterministic_given_seed(self):
        a = run_deepmd_surrogate(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        b = run_deepmd_surrogate(
            SurrogateDeepMDProblem(seed=5), _settings(), rng=5
        )
        assert _genomes(a) == _genomes(b)
        assert _fitnesses(a) == _fitnesses(b)

    def test_rbf_surrogate_interpolates_training_points(self):
        from repro.evo.surrogate import RBFSurrogate

        rng = np.random.default_rng(0)
        X = rng.uniform(size=(20, 4))
        Y = np.column_stack(
            [X.sum(axis=1), (X**2).sum(axis=1)]
        )
        model = RBFSurrogate().fit(X, Y)
        assert np.allclose(model.predict(X), Y, atol=1e-4)

    def test_greedy_picks_spread_along_the_front(self):
        from repro.evo.surrogate import _greedy_ehvi_picks

        predicted = np.array(
            [[0.1, 0.9], [0.9, 0.1], [0.12, 0.88], [0.5, 0.5]]
        )
        base = np.array([[0.95, 0.95]])
        picks = _greedy_ehvi_picks(
            predicted, base, np.array([1.0, 1.0]), 3
        )
        # the near-duplicate of the first pick is chosen last
        assert picks[0] != 2 or picks[1] != 2
        assert set(picks) <= {0, 1, 2, 3}
        assert len(picks) == 3


# ----------------------------------------------------------------------
# journal + resume bit-identity for the new modes
# ----------------------------------------------------------------------
def _journaled(tmp_path, mode, name):
    cfg = CampaignConfig(
        n_runs=2, pop_size=6, generations=3, base_seed=11, mode=mode
    )
    d = tmp_path / name
    d.mkdir()
    journal = CampaignJournal(
        journal_path(d), problem_spec={"backend": "surrogate"}
    )
    base = Campaign(
        lambda seed: SurrogateDeepMDProblem(seed=seed),
        cfg,
        journal=journal,
    ).run()
    journal.close()
    return d, cfg, base


def _result_view(result):
    return [
        (_genomes(run), _fitnesses(run)) for run in result.runs
    ]


@pytest.mark.parametrize("mode", ["pso", "surrogate"])
class TestNewModeResume:
    def test_complete_journal_restores_verbatim(self, tmp_path, mode):
        d, _, base = _journaled(tmp_path, mode, "camp")
        restored = resume_campaign(d)
        assert _result_view(restored) == _result_view(base)

    def test_truncated_journal_resumes_bit_identically(
        self, tmp_path, mode
    ):
        d, _, base = _journaled(tmp_path, mode, "camp")
        raw = journal_path(d).read_text().splitlines()
        # cut after run 1's second generation record: run 0 complete,
        # run 1 interrupted mid-flight
        kept, run1_gens = [], 0
        for line in raw:
            kept.append(line)
            doc = json.loads(line)
            if doc.get("type") == "generation" and doc.get("run") == 1:
                run1_gens += 1
                if run1_gens == 2:
                    break
        d2 = tmp_path / "cut"
        d2.mkdir()
        journal_path(d2).write_text("\n".join(kept) + "\n")
        resumed = resume_campaign(
            d2,
            problem_factory=lambda seed: SurrogateDeepMDProblem(
                seed=seed
            ),
        )
        assert _result_view(resumed) == _result_view(base)

    def test_journal_records_carry_rng_state(self, tmp_path, mode):
        d, _, _ = _journaled(tmp_path, mode, "camp")
        docs = [
            json.loads(line)
            for line in journal_path(d).read_text().splitlines()
        ]
        gens = [doc for doc in docs if doc["type"] == "generation"]
        assert gens and all(doc.get("rng_state") for doc in gens)
        if mode == "pso":
            assert all(
                "velocities" in doc["driver_state"]
                and "pbest" in doc["driver_state"]
                for doc in gens
            )


class TestPSOResumeRequiresDriverState:
    def test_missing_driver_state_raises_store_error(self, tmp_path):
        from repro.exceptions import StoreError

        d, _, _ = _journaled(tmp_path, "pso", "camp")
        raw = journal_path(d).read_text().splitlines()
        kept = []
        for line in raw:
            doc = json.loads(line)
            if doc.get("type") == "generation":
                doc.pop("driver_state", None)
                kept.append(json.dumps(doc))
                if doc.get("run") == 0 and doc["generation"] == 1:
                    break
            else:
                kept.append(line)
        d2 = tmp_path / "stripped"
        d2.mkdir()
        journal_path(d2).write_text("\n".join(kept) + "\n")
        with pytest.raises(StoreError, match="driver_state"):
            resume_campaign(
                d2,
                problem_factory=lambda seed: SurrogateDeepMDProblem(
                    seed=seed
                ),
            )


# ----------------------------------------------------------------------
# hypervolume early stop: bit-identical prefix
# ----------------------------------------------------------------------
class TestStopperPrefixIdentity:
    def _run(self, mode, settings):
        runner = {
            "generational": run_deepmd_nsga2,
            "pso": run_deepmd_pso,
            "surrogate": run_deepmd_surrogate,
        }[mode]
        return runner(
            SurrogateDeepMDProblem(seed=9), settings, rng=9
        )

    @pytest.mark.parametrize(
        "mode", ["generational", "pso", "surrogate"]
    )
    def test_stopped_run_is_prefix_of_unstopped(self, mode):
        full = self._run(mode, NSGA2Settings(pop_size=8, generations=6))
        stopped = self._run(
            mode,
            NSGA2Settings(
                pop_size=8,
                generations=6,
                hv_stop_eps=0.5,  # aggressive: stop on <50% gain
                hv_stop_patience=1,
            ),
        )
        assert len(stopped) < len(full)
        k = len(stopped)
        assert _genomes(stopped) == _genomes(full[:k])
        assert _fitnesses(stopped) == _fitnesses(full[:k])

    def test_disabled_by_default(self):
        assert NSGA2Settings().stopper() is None
        assert (
            NSGA2Settings(hv_stop_eps=1e-3).stopper() is not None
        )

    def test_steady_state_stops_breeding_early(self):
        from repro.hpo.driver import run_deepmd_steady_state

        full = run_deepmd_steady_state(
            SurrogateDeepMDProblem(seed=9),
            NSGA2Settings(pop_size=8, generations=6),
            rng=9,
        )
        stopped = run_deepmd_steady_state(
            SurrogateDeepMDProblem(seed=9),
            NSGA2Settings(
                pop_size=8,
                generations=6,
                hv_stop_eps=0.9,
                hv_stop_patience=1,
            ),
            rng=9,
        )
        n_full = sum(len(r.evaluated) for r in full)
        n_stopped = sum(len(r.evaluated) for r in stopped)
        assert n_stopped < n_full


# ----------------------------------------------------------------------
# three-objective campaigns, end to end
# ----------------------------------------------------------------------
class TestThreeObjectiveCampaign:
    def _campaign(self, mode="generational"):
        cfg = CampaignConfig(
            n_runs=1,
            pop_size=8,
            generations=2,
            base_seed=17,
            mode=mode,
            objectives="loss,time",
        )
        return Campaign(
            lambda seed: with_objectives(
                SurrogateDeepMDProblem(seed=seed), cfg.objectives
            ),
            cfg,
        ).run()

    def test_config_normalizes_objectives(self):
        cfg = CampaignConfig(objectives="loss,time")
        assert cfg.objectives == ("energy", "force", "runtime")
        assert CampaignConfig().objectives == BASE_OBJECTIVES

    @pytest.mark.parametrize("mode", ["generational", "pso"])
    def test_three_wide_fitness_and_nonzero_hypervolume(self, mode):
        from repro.analysis.convergence import hypervolume_progress

        result = self._campaign(mode)
        F = np.asarray(
            [
                ind.fitness
                for ind in result.runs[0][-1].population
                if ind.is_viable
            ]
        )
        assert F.shape[1] == 3
        assert np.all(F[:, 2] > 0)
        hv = hypervolume_progress(result)
        assert np.all(np.isfinite(hv))
        assert hv[-1] > 0.0

    def test_failures_still_fill_all_objectives_with_maxint(self):
        from repro.evo.problem import Problem

        class Exploding(Problem):
            n_objectives = 2

            def evaluate(self, phenome):
                raise RuntimeError("boom")

        wrapped = with_objectives(Exploding(), "loss,time")
        from repro.evo.individual import RobustIndividual

        ind = RobustIndividual(np.zeros(2), problem=wrapped)
        ind.n_objectives = wrapped.n_objectives
        ind.evaluate()
        assert ind.fitness.shape == (3,)
        assert np.all(ind.fitness == MAXINT)

    def test_mode_validation_covers_the_zoo(self):
        for mode in ("generational", "steady-state", "pso", "surrogate"):
            assert CampaignConfig(mode=mode).mode == mode
        with pytest.raises(ValueError, match="mode"):
            CampaignConfig(mode="annealing")


# ----------------------------------------------------------------------
# the campaign service accepts the new modes and objective selections
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_config_from_spec_accepts_new_modes(self):
        from repro.service.registry import campaign_config_from_spec

        cfg = campaign_config_from_spec(
            {"mode": "pso", "n_runs": 1, "pop_size": 4}
        )
        assert cfg.mode == "pso"

    def test_registry_threads_objectives_into_problem_spec(
        self, tmp_path
    ):
        from repro.service.registry import CampaignRegistry

        registry = CampaignRegistry(tmp_path)
        campaign = registry.create(
            {
                "name": "threeobj",
                "config": {
                    "mode": "surrogate",
                    "n_runs": 1,
                    "pop_size": 4,
                    "generations": 1,
                    "objectives": "loss,time",
                },
                "problem": {"backend": "surrogate"},
            }
        )
        assert campaign.problem_spec["objectives"] == [
            "energy",
            "force",
            "runtime",
        ]

"""End-to-end integration tests across module boundaries.

These exercise the complete §2.2 workflow at miniature scale: MD data →
real DeepPot-SE trainings driven by the NSGA-II pipeline with robust
individuals and distributed evaluation — the paper's system, shrunk.
"""

import numpy as np
import pytest

from repro.distributed import LocalCluster, RandomFaults
from repro.evo.individual import MAXINT
from repro.evo.nsga2 import rank_ordinal_sort
from repro.hpo import (
    DeepMDProblem,
    DeepMDRepresentation,
    EvaluatorSettings,
    NSGA2Settings,
    SurrogateDeepMDProblem,
    run_deepmd_nsga2,
)
from repro.mo.metrics import hypervolume_2d, inverted_generational_distance
from repro.mo.testsuite import ZDT1, ZDT2


class TestNSGA2OnZDT:
    """Validate the optimizer itself against known analytic fronts
    before trusting it on the DeePMD landscape."""

    def _solve(self, problem, generations=120, pop=60, rng=1):
        from repro.evo.algorithm import generational_nsga2

        records = generational_nsga2(
            problem=problem,
            init_ranges=problem.bounds,
            initial_std=np.full(problem.n_variables, 0.15),
            pop_size=pop,
            generations=generations,
            hard_bounds=problem.bounds,
            anneal_factor=0.98,
            rng=rng,
        )
        F = np.array([ind.fitness for ind in records[-1].population])
        from repro.mo.dominance import non_dominated_mask

        return F[non_dominated_mask(F)]

    def test_zdt1_convergence(self):
        problem = ZDT1(n_variables=8)
        front = self._solve(problem)
        hv = hypervolume_2d(front, (1.1, 1.1))
        igd = inverted_generational_distance(
            front, problem.true_front()
        )
        assert hv > 0.80  # ideal ≈ 0.87 with this reference point
        assert igd < 0.05

    def test_zdt2_concave_front(self):
        problem = ZDT2(n_variables=8)
        front = self._solve(problem, generations=150, rng=3)
        igd = inverted_generational_distance(
            front, problem.true_front()
        )
        assert igd < 0.08


@pytest.fixture(scope="module")
def real_problem(small_dataset):
    settings = EvaluatorSettings(
        numb_steps=25,
        batch_size=2,
        disp_freq=25,
        embedding_widths=(4, 8),
        axis_neurons=2,
        fitting_widths=(8,),
        time_limit=120.0,
    )
    return DeepMDProblem(small_dataset, settings=settings)


class TestRealEvaluator:
    def test_good_phenome_trains(self, real_problem):
        phenome = {
            "start_lr": 3e-3,
            "stop_lr": 1e-4,
            "rcut": 4.5,
            "rcut_smth": 2.0,
            "scale_by_worker": "none",
            "desc_activ_func": "tanh",
            "fitting_activ_func": "tanh",
        }
        fitness, meta = real_problem.evaluate_with_metadata(phenome)
        assert fitness.shape == (2,)
        assert np.all(np.isfinite(fitness))
        assert meta["runtime_minutes"] > 0
        assert "workdir" in meta

    def test_invalid_radii_fail(self, real_problem):
        phenome = {
            "start_lr": 3e-3,
            "stop_lr": 1e-4,
            "rcut": 4.0,
            "rcut_smth": 4.5,  # > rcut: descriptor undefined
            "scale_by_worker": "none",
            "desc_activ_func": "tanh",
            "fitting_activ_func": "tanh",
        }
        with pytest.raises(Exception):
            real_problem.evaluate_with_metadata(phenome)

    def test_run_directories_named_by_uuid(self, real_problem):
        phenome = {
            "start_lr": 3e-3,
            "stop_lr": 1e-4,
            "rcut": 4.5,
            "rcut_smth": 2.0,
            "scale_by_worker": "sqrt",
            "desc_activ_func": "softplus",
            "fitting_activ_func": "sigmoid",
        }
        _, meta = real_problem.evaluate_with_metadata(
            phenome, uuid="fixed-uuid-1"
        )
        assert meta["workdir"].endswith("fixed-uuid-1")
        assert (real_problem.base_dir / "fixed-uuid-1").exists()

    @pytest.mark.slow
    def test_nsga2_over_real_trainer(self, small_dataset):
        """The full paper pipeline, miniaturized: a two-generation
        NSGA-II deployment over actual trainings."""
        settings = EvaluatorSettings(
            numb_steps=15,
            batch_size=2,
            disp_freq=15,
            embedding_widths=(4, 6),
            axis_neurons=2,
            fitting_widths=(6,),
            time_limit=300.0,
        )
        problem = DeepMDProblem(small_dataset, settings=settings)
        records = run_deepmd_nsga2(
            problem,
            settings=NSGA2Settings(pop_size=6, generations=2),
            rng=0,
        )
        assert len(records) == 3
        last = records[-1].population
        assert all(ind.is_evaluated for ind in last)
        # at least some trainings must have succeeded
        viable = [ind for ind in last if ind.is_viable]
        assert viable
        # and the evaluator must have produced sane RMSEs
        for ind in viable:
            assert 0.0 < ind.fitness[1] < 10.0


class TestSurrogateWithDistributedCluster:
    def test_campaign_over_cluster(self):
        problem = SurrogateDeepMDProblem(seed=0)
        with LocalCluster(n_workers=4) as cluster:
            records = run_deepmd_nsga2(
                problem,
                settings=NSGA2Settings(pop_size=24, generations=3),
                client=cluster.client(),
                rng=0,
            )
        assert len(records) == 4
        assert all(ind.is_evaluated for ind in records[-1].population)

    def test_campaign_survives_worker_faults(self):
        """Node failures mid-campaign must not lose evaluations —
        tasks are reassigned, mirroring the paper's Dask setup."""
        problem = SurrogateDeepMDProblem(seed=0)
        policy = RandomFaults(rate=0.05, max_failures=2, rng=7)
        with LocalCluster(
            n_workers=4, fault_policy=policy, max_retries=4
        ) as cluster:
            records = run_deepmd_nsga2(
                problem,
                settings=NSGA2Settings(pop_size=20, generations=3),
                client=cluster.client(),
                rng=0,
            )
        for rec in records:
            assert len(rec.evaluated) == 20
            assert all(ind.is_evaluated for ind in rec.evaluated)

    def test_exhausted_workers_become_maxint_not_crash(self):
        """When every node dies, surviving semantics: the affected
        individuals get MAXINT fitness and the EA keeps going."""
        problem = SurrogateDeepMDProblem(seed=0)
        policy = RandomFaults(rate=0.9, rng=1)  # kills workers fast
        with LocalCluster(
            n_workers=2, fault_policy=policy, max_retries=1
        ) as cluster:
            records = run_deepmd_nsga2(
                problem,
                settings=NSGA2Settings(pop_size=8, generations=1),
                client=cluster.client(),
                rng=0,
            )
        evaluated = records[-1].evaluated
        assert all(ind.fitness is not None for ind in evaluated)
        # the dead-cluster evaluations are MAXINT failures
        assert any(np.all(ind.fitness == MAXINT) for ind in evaluated)


class TestSortingRobustnessEndToEnd:
    def test_mixed_failures_sort_deterministically(self):
        """The paper's MAXINT-vs-NaN point: a population containing
        failures still yields a well-defined total preorder."""
        rng = np.random.default_rng(0)
        F = rng.uniform(0.0, 1.0, size=(30, 2))
        F[::7] = MAXINT
        r1 = rank_ordinal_sort(F)
        r2 = rank_ordinal_sort(F.copy())
        assert np.array_equal(r1, r2)
        assert r1[::7].min() > r1[1::7].max()

    def test_nan_failures_would_be_rejected(self):
        F = np.array([[0.1, 0.2], [np.nan, 0.3]])
        with pytest.raises(ValueError):
            rank_ordinal_sort(F)

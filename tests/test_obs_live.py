"""Tests for the live observability plane: campaign status snapshots,
convergence telemetry on degenerate fronts, cross-process span
ingestion, the /metrics + /status HTTP server, and the monitor
dashboard.

The HTTP tests bind an ephemeral port (``port=0``) and talk to the
server through ``urllib`` — the same path ``repro-hpo monitor`` and a
Prometheus scrape take.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.evo import MAXINT, Individual
from repro.hpo.cli import _render_dashboard
from repro.hpo.cli import main as hpo_main
from repro.obs import (
    NULL_STATUS,
    CampaignStatus,
    ConvergenceTelemetry,
    MetricsRegistry,
    ObservabilityServer,
    Tracer,
    current_campaign_id,
    get_status,
    set_status,
    set_thread_status,
    use_status,
    use_thread_status,
)
from repro.obs.trace import NULL_TRACER


def _strict_loads(text: str) -> dict:
    """Parse JSON rejecting NaN/Infinity tokens."""

    def _reject(token: str):
        raise ValueError(f"non-strict JSON token: {token}")

    return json.loads(text, parse_constant=_reject)


def _individual(fitness) -> Individual:
    ind = Individual(np.zeros(2))
    ind.fitness = np.asarray(fitness, dtype=np.float64)
    return ind


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


# ----------------------------------------------------------------------
# campaign status
# ----------------------------------------------------------------------
class TestCampaignStatus:
    def test_null_status_is_inert_default(self):
        assert NULL_STATUS.enabled is False
        NULL_STATUS.update(mode="x")
        NULL_STATUS.worker_update("w0", state="busy")
        NULL_STATUS.mark_done()
        assert NULL_STATUS.snapshot() == {}
        assert get_status() is NULL_STATUS

    def test_use_status_scopes_the_global(self):
        status = CampaignStatus(campaign_id="cafe10")
        before = get_status()
        with use_status(status):
            assert get_status() is status
        assert get_status() is before

    def test_set_status_none_restores_null(self):
        previous = set_status(CampaignStatus())
        try:
            assert get_status().enabled
        finally:
            set_status(None)
        assert get_status() is NULL_STATUS
        set_status(previous)

    def test_snapshot_rates_derive_from_engine_stats(self):
        status = CampaignStatus(campaign_id="cafe11", mode="generational")
        status.begin_run(0, seed=42)
        status.publish_engine(
            {
                "submitted": 20,
                "completed": 20,
                "cache_hits": 5,
                "dedup_hits": 2,
            }
        )
        snap = status.snapshot()
        assert snap["campaign"] == "cafe11"
        assert snap["state"] == "running"
        assert snap["run"] == 0
        assert snap["seed"] == 42
        assert snap["elapsed_s"] >= 0.0  # rounds to 0.000 when instant
        assert snap["evals_per_sec"] > 0.0
        assert snap["cache_hit_rate"] == pytest.approx(0.25)
        assert snap["dedup_rate"] == pytest.approx(0.1)

    def test_snapshot_zero_completed_has_zero_rates(self):
        snap = CampaignStatus().snapshot()
        assert snap["evals_per_sec"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
        assert snap["dedup_rate"] == 0.0

    def test_publish_generation_appends_series_and_replaces_front(self):
        status = CampaignStatus()
        status.begin_run(1)
        status.publish_generation(
            generation=0,
            hypervolume=0.001,
            front=[[0.01, 0.1]],
            front_size=1,
            spread=None,
        )
        status.publish_generation(
            generation=1,
            hypervolume=0.002,
            front=[[0.009, 0.09], [0.011, 0.08]],
            front_size=2,
            spread=0.5,
        )
        snap = status.snapshot()
        series = snap["hypervolume_series"]
        assert [e["generation"] for e in series] == [0, 1]
        assert [e["run"] for e in series] == [1, 1]
        assert series[0]["spread"] is None
        assert series[1]["hypervolume"] == pytest.approx(0.002)
        # the front is the latest generation's, not an accumulation
        assert len(snap["front"]) == 2
        assert snap["generation"] == 1

    def test_publish_generation_sanitizes_nonfinite(self):
        status = CampaignStatus()
        status.publish_generation(
            generation=0,
            hypervolume=float("nan"),
            front=[[float("inf"), 0.1]],
            front_size=1,
            spread=float("inf"),
        )
        snap = status.snapshot()
        entry = snap["hypervolume_series"][0]
        assert entry["hypervolume"] == 0.0
        assert entry["spread"] == 0.0
        assert snap["front"] == [[0.0, 0.1]]
        json.dumps(snap, allow_nan=False)  # strict-JSON safe

    def test_front_capped_at_256_points(self):
        status = CampaignStatus()
        big = np.random.default_rng(0).random((400, 2))
        status.publish_generation(
            generation=0, hypervolume=0.1, front=big, front_size=400
        )
        assert len(status.snapshot()["front"]) == 256

    def test_worker_update_merges_and_timestamps(self):
        status = CampaignStatus()
        status.worker_update("pool-0", state="busy", task="t1")
        status.worker_update("pool-0", state="idle", task=None)
        workers = status.snapshot()["workers"]
        assert workers["pool-0"]["state"] == "idle"
        assert workers["pool-0"]["task"] is None
        assert workers["pool-0"]["updated_ts"] > 0

    def test_mark_done_sets_state_and_finished_ts(self):
        status = CampaignStatus()
        status.mark_done()
        snap = status.snapshot()
        assert snap["state"] == "done"
        assert snap["finished_ts"] >= snap["started_ts"]


# ----------------------------------------------------------------------
# thread-local status (the multi-campaign service: each campaign thread
# publishes into its own status, concurrently)
# ----------------------------------------------------------------------
class TestThreadLocalStatus:
    def test_use_thread_status_scopes_this_thread_only(self):
        import threading

        mine = CampaignStatus(campaign_id="mine")
        seen_elsewhere = []

        def observer():
            seen_elsewhere.append(get_status())

        with use_thread_status(mine):
            assert get_status() is mine
            thread = threading.Thread(target=observer)
            thread.start()
            thread.join()
        assert get_status() is not mine
        # the override never leaked into the other thread
        assert seen_elsewhere == [NULL_STATUS]

    def test_thread_override_shadows_the_global(self):
        shared = CampaignStatus(campaign_id="global")
        local = CampaignStatus(campaign_id="local")
        with use_status(shared):
            assert get_status() is shared
            with use_thread_status(local):
                assert get_status() is local
            assert get_status() is shared

    def test_set_thread_status_returns_previous(self):
        first = CampaignStatus(campaign_id="first")
        assert set_thread_status(first) is None
        try:
            second = CampaignStatus(campaign_id="second")
            assert set_thread_status(second) is first
        finally:
            set_thread_status(None)
        assert get_status() is NULL_STATUS

    def test_current_campaign_id_follows_the_active_status(self):
        assert current_campaign_id() is None
        with use_thread_status(CampaignStatus(campaign_id="cafe42")):
            assert current_campaign_id() == "cafe42"
        assert current_campaign_id() is None

    def test_status_carries_service_metadata(self):
        status = CampaignStatus(
            campaign_id="cafe43", tenant="alice", name="exp-1"
        )
        snap = status.snapshot()
        assert status.campaign_id == "cafe43"
        assert snap["tenant"] == "alice"
        assert snap["name"] == "exp-1"


# ----------------------------------------------------------------------
# convergence telemetry
# ----------------------------------------------------------------------
class TestConvergenceTelemetry:
    def _telemetry(self, status=None):
        registry = MetricsRegistry()
        return (
            ConvergenceTelemetry(
                registry=registry, status=status or NULL_STATUS
            ),
            registry,
        )

    def _gauges(self, registry):
        snap = registry.snapshot()
        return {
            k: snap[k]
            for k in (
                "campaign_hypervolume",
                "campaign_front_size",
                "campaign_front_spread",
                "campaign_generation",
            )
        }

    def test_healthy_front_publishes_positive_hypervolume(self):
        telemetry, registry = self._telemetry()
        summary = telemetry.observe_generation(
            3,
            [
                _individual([0.010, 0.10]),
                _individual([0.008, 0.15]),
                _individual([0.015, 0.05]),
            ],
        )
        assert summary["hypervolume"] > 0.0
        assert summary["front_size"] == 3
        gauges = self._gauges(registry)
        assert gauges["campaign_hypervolume"] == pytest.approx(
            summary["hypervolume"]
        )
        assert gauges["campaign_generation"] == 3

    def test_empty_population_is_finite(self):
        telemetry, registry = self._telemetry()
        summary = telemetry.observe_generation(0, [])
        assert summary == {
            "generation": 0,
            "hypervolume": 0.0,
            "front_size": 0,
            "spread": None,
        }
        assert all(
            np.isfinite(v) for v in self._gauges(registry).values()
        )

    def test_single_point_front_spread_is_none(self):
        telemetry, registry = self._telemetry()
        summary = telemetry.observe_generation(
            1, [_individual([0.01, 0.1])]
        )
        assert summary["front_size"] == 1
        assert summary["hypervolume"] > 0.0
        assert summary["spread"] is None  # undefined, never NaN
        assert all(
            np.isfinite(v) for v in self._gauges(registry).values()
        )

    def test_duplicate_objectives_front(self):
        telemetry, registry = self._telemetry()
        summary = telemetry.observe_generation(
            2, [_individual([0.01, 0.1]) for _ in range(4)]
        )
        assert np.isfinite(summary["hypervolume"])
        assert summary["spread"] is None or np.isfinite(
            summary["spread"]
        )
        assert all(
            np.isfinite(v) for v in self._gauges(registry).values()
        )

    def test_all_maxint_population_is_empty_front(self):
        telemetry, registry = self._telemetry()
        summary = telemetry.observe_generation(
            1, [_individual([MAXINT, MAXINT]) for _ in range(3)]
        )
        assert summary["hypervolume"] == 0.0
        assert summary["front_size"] == 0
        assert summary["spread"] is None
        assert all(
            np.isfinite(v) for v in self._gauges(registry).values()
        )

    def test_nonfinite_and_unevaluated_individuals_filtered(self):
        telemetry, _ = self._telemetry()
        unevaluated = Individual(np.zeros(2))  # fitness is None
        summary = telemetry.observe_generation(
            0,
            [
                unevaluated,
                _individual([float("nan"), 0.1]),
                _individual([0.01, 0.1]),
            ],
        )
        assert summary["front_size"] == 1
        assert np.isfinite(summary["hypervolume"])

    def test_publishes_into_status_when_enabled(self):
        status = CampaignStatus()
        telemetry, _ = self._telemetry(status=status)
        telemetry.observe_generation(
            5, [_individual([0.01, 0.1])], evaluated=10
        )
        snap = status.snapshot()
        assert snap["generation"] == 5
        assert snap["evaluated"] == 10
        assert len(snap["hypervolume_series"]) == 1
        assert len(snap["front"]) == 1

    def test_gauges_labeled_by_campaign_id_from_status(self):
        registry = MetricsRegistry()
        status = CampaignStatus(campaign_id="cafe51")
        telemetry = ConvergenceTelemetry(registry=registry, status=status)
        telemetry.observe_generation(2, [_individual([0.01, 0.1])])
        series = registry.snapshot()
        # two concurrent campaigns must not clobber one gauge: every
        # series carries the campaign it belongs to
        assert series['campaign_generation{campaign_id="cafe51"}'] == 2
        assert series['campaign_front_size{campaign_id="cafe51"}'] == 1
        assert series['campaign_hypervolume{campaign_id="cafe51"}'] > 0.0
        assert "campaign_generation" not in series  # no unlabeled twin

    def test_explicit_campaign_id_overrides_status(self):
        registry = MetricsRegistry()
        telemetry = ConvergenceTelemetry(
            registry=registry,
            status=CampaignStatus(campaign_id="from-status"),
            campaign_id="explicit",
        )
        telemetry.observe_generation(1, [_individual([0.01, 0.1])])
        series = registry.snapshot()
        assert 'campaign_generation{campaign_id="explicit"}' in series

    def test_unlabeled_without_campaign_id(self):
        telemetry, registry = self._telemetry()  # NULL_STATUS: no id
        telemetry.observe_generation(1, [_individual([0.01, 0.1])])
        assert "campaign_generation" in registry.snapshot()


# ----------------------------------------------------------------------
# cross-process span ingestion
# ----------------------------------------------------------------------
class TestTracerIngest:
    def _worker_record(self, **overrides):
        rec = {
            "type": "span",
            "id": 0,
            "parent": 999,  # foreign-process id: meaningless here
            "name": "worker.task",
            "mono": 1.0,
            "dur": 0.25,
            "status": "ok",
            "tags": {"worker": "pool-0", "task": "pool-task-7", "pid": 1234},
        }
        rec.update(overrides)
        return rec

    def test_ingest_reassigns_span_id_and_drops_parent(self):
        tracer = Tracer()
        with tracer.span("local"):
            pass
        local_id = tracer.spans("local")[0]["id"]
        tracer.ingest(self._worker_record(id=0))
        tracer.ingest(self._worker_record(id=0, tags={"task": "t2"}))
        ingested = tracer.spans("worker.task")
        assert len(ingested) == 2
        ids = {local_id} | {r["id"] for r in ingested}
        assert len(ids) == 3  # all distinct despite identical inputs
        assert all(r["parent"] is None for r in ingested)

    def test_ingest_preserves_tags_and_timing(self):
        tracer = Tracer()
        tracer.ingest(self._worker_record())
        (rec,) = tracer.spans("worker.task")
        assert rec["tags"]["worker"] == "pool-0"
        assert rec["tags"]["task"] == "pool-task-7"
        assert rec["tags"]["pid"] == 1234
        assert rec["dur"] == pytest.approx(0.25)

    def test_ingest_events_pass_through_without_ids(self):
        tracer = Tracer()
        tracer.ingest(
            {
                "type": "event",
                "name": "worker.fault",
                "mono": 2.0,
                "parent": 5,
                "tags": {"worker": "pool-1"},
            }
        )
        (event,) = tracer.events("worker.fault")
        assert event["parent"] is None

    def test_ingest_sanitizes_nonfinite_tags(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.ingest(
                self._worker_record(
                    tags={"worker": "pool-0", "bad": float("nan")}
                )
            )
        for line in path.read_text().splitlines():
            _strict_loads(line)

    def test_null_tracer_ingest_is_inert(self):
        NULL_TRACER.ingest(self._worker_record())
        assert NULL_TRACER.records == []


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------
class TestObservabilityServer:
    @pytest.fixture()
    def plane(self):
        registry = MetricsRegistry()
        registry.gauge("campaign_hypervolume").set(0.0042)
        registry.counter("engine_completed_total").inc(7)
        status = CampaignStatus(campaign_id="cafe12", mode="generational")
        status.publish_generation(
            generation=2,
            hypervolume=0.0042,
            front=[[0.01, 0.1]],
            front_size=1,
        )
        tracer = Tracer()
        tracer.ingest(
            {
                "type": "span",
                "id": 0,
                "name": "worker.task",
                "mono": 1.0,
                "dur": 0.5,
                "status": "ok",
                "tags": {"worker": "pool-0", "task": "t1"},
            }
        )
        with ObservabilityServer(
            port=0, registry=registry, status=status, tracer=tracer
        ) as server:
            yield server

    def test_ephemeral_port_bound_and_url(self, plane):
        assert plane.port > 0
        assert plane.url == f"http://127.0.0.1:{plane.port}"

    def test_metrics_endpoint_serves_prometheus_text(self, plane):
        code, body = _get(f"{plane.url}/metrics")
        assert code == 200
        assert "# TYPE campaign_hypervolume gauge" in body
        assert "campaign_hypervolume 0.0042" in body
        assert "engine_completed_total 7" in body

    def test_status_endpoint_serves_strict_json(self, plane):
        code, body = _get(f"{plane.url}/status")
        assert code == 200
        snapshot = _strict_loads(body)
        assert snapshot["campaign"] == "cafe12"
        assert snapshot["state"] == "running"
        assert snapshot["hypervolume_series"][0]["hypervolume"] == (
            pytest.approx(0.0042)
        )
        # the live straggler summary from the tracer's records, with
        # the raw numpy arrays stripped
        stragglers = snapshot["stragglers"]
        assert stragglers["n_tasks"] == 1
        assert "task_seconds" not in stragglers
        assert stragglers["slowest"][0]["worker"] == "pool-0"

    def test_healthz_and_404(self, plane):
        code, body = _get(f"{plane.url}/healthz")
        assert code == 200
        assert body == "ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{plane.url}/nope")
        assert excinfo.value.code == 404

    def test_status_without_tracer_has_no_stragglers(self):
        with ObservabilityServer(
            port=0,
            registry=MetricsRegistry(),
            status=CampaignStatus(),
            tracer=None,
        ) as server:
            _, body = _get(f"{server.url}/status")
        assert "stragglers" not in _strict_loads(body)


# ----------------------------------------------------------------------
# monitor dashboard
# ----------------------------------------------------------------------
def _dashboard_snapshot() -> dict:
    return {
        "campaign": "cafe13",
        "mode": "generational",
        "state": "running",
        "run": 0,
        "generation": 4,
        "elapsed_s": 12.5,
        "evals_per_sec": 8.0,
        "cache_hit_rate": 0.25,
        "dedup_rate": 0.1,
        "hypervolume_series": [
            {"generation": g, "hypervolume": 0.001 * (g + 1), "front_size": g + 1}
            for g in range(5)
        ],
        "front": [[0.01, 0.1], [0.009, 0.12]],
        "engine": {
            "submitted": 100,
            "completed": 100,
            "fresh": 75,
            "failures": 2,
        },
        "workers": {
            "pool-0": {
                "state": "busy",
                "task": "pool-task-9",
                "tasks_dispatched": 51,
                "respawns": 1,
            },
            "pool-1": {"state": "idle", "task": None, "tasks_dispatched": 49},
        },
        "stragglers": {
            "slowest": [
                {"task": "t9", "worker": "pool-0", "dur_s": 1.5, "status": "ok"}
            ],
            "retries": 1,
            "requeued": 2,
            "pool_worker_deaths": 1,
            "pool_respawns": 1,
        },
    }


class TestMonitorDashboard:
    def test_render_dashboard_sections(self):
        text = _render_dashboard(_dashboard_snapshot())
        assert "campaign cafe13" in text
        assert "state running" in text
        assert "generation 4" in text
        assert "evals/sec 8" in text
        assert "cache-hit 25.0%" in text
        assert "hypervolume" in text
        # monotone series renders a rising sparkline ending at full block
        assert "█" in text
        assert "latest 0.005" in text
        assert "nondominated front: 2 solution(s)" in text
        assert "engine: submitted 100" in text
        assert "pool-0" in text and "pool-1" in text
        assert "retries: 1  requeued: 2  pool deaths: 1  pool respawns: 1" in text

    def test_render_dashboard_minimal_snapshot(self):
        text = _render_dashboard({"state": "running"})
        assert "campaign ?" in text
        assert "hypervolume" not in text
        assert "workers" not in text

    def test_monitor_once_against_live_server(self, capsys):
        status = CampaignStatus(campaign_id="cafe14", mode="steady-state")
        status.publish_generation(
            generation=0, hypervolume=0.003, front=[[0.01, 0.1]], front_size=1
        )
        status.worker_update("pool-0", state="idle", tasks_dispatched=3)
        with ObservabilityServer(
            port=0, registry=MetricsRegistry(), status=status
        ) as server:
            rc = hpo_main(["monitor", server.url, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign cafe14" in out
        assert "hypervolume" in out
        assert "pool-0" in out

    def test_monitor_normalizes_bare_host_and_status_suffix(self, capsys):
        with ObservabilityServer(
            port=0, registry=MetricsRegistry(), status=CampaignStatus()
        ) as server:
            bare = f"127.0.0.1:{server.port}/status"
            rc = hpo_main(["monitor", bare, "--once"])
        assert rc == 0
        assert "campaign ?" in capsys.readouterr().out

    def test_monitor_unreachable_returns_1(self, capsys):
        # a port from the ephemeral range with nothing listening
        rc = hpo_main(
            [
                "monitor",
                "http://127.0.0.1:1",
                "--once",
                "--timeout",
                "0.5",
            ]
        )
        assert rc == 1
        assert "cannot read" in capsys.readouterr().err

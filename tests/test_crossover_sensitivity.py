"""Tests for the recombination operators and the sensitivity-analysis
module (OAT profiles + Morris screening)."""

import numpy as np
import pytest

from repro.evo.crossover import (
    blend_crossover,
    sbx_crossover,
    uniform_crossover,
)
from repro.evo.individual import Individual
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.representation import GENE_NAMES
from repro.hpo.sensitivity import (
    MorrisResult,
    morris_screening,
    one_at_a_time,
)


def _pair(a, b):
    return [Individual(np.asarray(a, float)), Individual(np.asarray(b, float))]


class TestUniformCrossover:
    def test_children_genes_from_parents(self):
        parents = _pair([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        children = list(uniform_crossover(p_swap=0.5, rng=0)(parents))
        assert len(children) == 2
        for c in children:
            assert all(g in (0.0, 1.0) for g in c.genome)

    def test_swap_is_symmetric(self):
        parents = _pair([0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0])
        c1, c2 = list(uniform_crossover(p_swap=0.5, rng=1)(parents))
        # gene-wise, the two children are complementary
        assert np.allclose(c1.genome + c2.genome, 1.0)

    def test_p_zero_is_identity(self):
        parents = _pair([1.0, 2.0], [3.0, 4.0])
        c1, c2 = list(uniform_crossover(p_swap=0.0, rng=0)(parents))
        assert np.array_equal(c1.genome, [1.0, 2.0])
        assert np.array_equal(c2.genome, [3.0, 4.0])

    def test_p_one_is_full_swap(self):
        parents = _pair([1.0, 2.0], [3.0, 4.0])
        c1, c2 = list(uniform_crossover(p_swap=1.0, rng=0)(parents))
        assert np.array_equal(c1.genome, [3.0, 4.0])
        assert np.array_equal(c2.genome, [1.0, 2.0])

    def test_resets_fitness(self):
        parents = _pair([1.0], [2.0])
        for p in parents:
            p.fitness = np.array([1.0])
        for c in uniform_crossover(rng=0)(parents):
            assert c.fitness is None

    def test_odd_stream_drops_last(self):
        singles = [Individual([1.0])]
        assert list(uniform_crossover(rng=0)(singles)) == []

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            uniform_crossover(p_swap=1.5)


class TestBlendCrossover:
    def test_children_within_expanded_interval(self):
        parents = _pair([0.0, 10.0], [1.0, 20.0])
        children = list(blend_crossover(alpha=0.5, rng=0)(parents))
        for c in children:
            assert -0.5 <= c.genome[0] <= 1.5
            assert 5.0 <= c.genome[1] <= 25.0

    def test_alpha_zero_stays_inside_parent_box(self):
        parents = _pair([0.0, 0.0], [1.0, 1.0])
        for c in blend_crossover(alpha=0.0, rng=1)(parents):
            assert np.all(c.genome >= 0.0) and np.all(c.genome <= 1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            blend_crossover(alpha=-0.1)


class TestSBX:
    def test_mean_preserved_per_pair(self):
        parents = _pair([0.0, 4.0, -2.0], [2.0, 8.0, 6.0])
        mean_before = 0.5 * (parents[0].genome + parents[1].genome)
        c1, c2 = list(sbx_crossover(eta=10.0, rng=0)(parents))
        mean_after = 0.5 * (c1.genome + c2.genome)
        assert np.allclose(mean_before, mean_after)

    def test_large_eta_children_near_parents(self):
        rng = np.random.default_rng(0)
        spread = []
        for trial in range(50):
            parents = _pair([0.0], [1.0])
            c1, c2 = list(sbx_crossover(eta=200.0, rng=rng)(parents))
            spread.append(abs(c1.genome[0] - 0.0) + abs(c2.genome[0] - 1.0))
        # near-parent children most of the time
        assert np.median(spread) < 0.2

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            sbx_crossover(eta=0.0)


class TestOneAtATime:
    @pytest.fixture(scope="class")
    def profiles(self):
        return one_at_a_time(
            SurrogateDeepMDProblem(seed=0, simulate_runtime=False),
            n_points=9,
        )

    def test_one_profile_per_gene(self, profiles):
        assert [p.gene for p in profiles] == list(GENE_NAMES)

    def test_profiles_cover_ranges(self, profiles):
        from repro.hpo.representation import DeepMDRepresentation

        for g, p in enumerate(profiles):
            lo, hi = DeepMDRepresentation.init_ranges[g]
            assert p.values[0] == lo and p.values[-1] == hi

    def test_rcut_profile_monotone_force(self, profiles):
        rcut = next(p for p in profiles if p.gene == "rcut")
        ok = np.isfinite(rcut.force) & (rcut.force < 1e9)
        forces = rcut.force[ok]
        assert forces[0] > forces[-1]  # more cutoff, less error

    def test_sensitive_genes_have_larger_range(self, profiles):
        by_gene = {p.gene: p.force_range() for p in profiles}
        # the learning rate and cutoff dominate; smoothing radius is mild
        assert by_gene["start_lr"] > by_gene["rcut_smth"]
        assert by_gene["rcut"] > by_gene["rcut_smth"]


class TestMorris:
    @pytest.fixture(scope="class")
    def result(self) -> MorrisResult:
        return morris_screening(
            SurrogateDeepMDProblem(seed=0, simulate_runtime=False),
            n_trajectories=25,
            rng=0,
        )

    def test_shapes(self, result):
        assert len(result.mu_star_force) == len(GENE_NAMES)
        assert result.trajectories == 25

    def test_all_genes_measured(self, result):
        # every gene collected at least some effects
        assert np.isfinite(result.mu_star_force).all()

    def test_ranking_identifies_learning_rate_and_cutoff(self, result):
        """The sensitivity screen justifies the paper's gene choice:
        the top influencers include the start learning rate and rcut."""
        top4 = set(result.ranking_by_force()[:4])
        assert "start_lr" in top4
        assert "rcut" in top4

    def test_interaction_signal_present(self, result):
        """scale_by_worker acts only through start_lr — a pure
        interaction — so its sigma should be comparable to its mu*."""
        idx = GENE_NAMES.index("scale_by_worker")
        assert result.sigma_force[idx] > 0.0

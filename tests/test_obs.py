"""Tests for the observability stack: tracer, metrics registry,
scheduler task timelines, journal strictness, and the trace report.

The scheduler-lifecycle tests drive the queue by hand (submit →
``next_task`` → ``task_done``/``worker_died``) so the
:class:`~repro.distributed.scheduler.TaskRecord` under test is
deterministic; the integration tests run a real traced
:class:`~repro.distributed.LocalCluster`.
"""

import json
import threading

import numpy as np
import pytest

from repro.distributed import LocalCluster, Scheduler
from repro.evo.algorithm import GenerationRecord
from repro.exceptions import WorkerFailure
from repro.hpo.cli import main as hpo_main
from repro.io import RunLogger, read_runlog, summarize_runlog
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    escape_label_value,
    get_tracer,
    read_trace,
    render_trace_report,
    set_tracer,
    use_tracer,
)
from repro.obs.report import (
    straggler_summary,
    wallclock_breakdown,
    worker_utilization,
)


def _strict_loads(line: str) -> dict:
    """Parse one journal/trace line rejecting NaN/Infinity tokens."""

    def _reject(token: str):
        raise ValueError(f"non-strict JSON token: {token}")

    return json.loads(line, parse_constant=_reject)


class _DummyWorker:
    def __init__(self, name: str = "w0") -> None:
        self.name = name


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_fields(self):
        tracer = Tracer()
        with tracer.span("phase", worker="w0") as span:
            span.tag(extra=1)
        (rec,) = tracer.spans("phase")
        assert rec["type"] == "span"
        assert rec["status"] == "ok"
        assert rec["dur"] >= 0.0
        assert rec["parent"] is None
        assert rec["tags"] == {"worker": "w0", "extra": 1}

    def test_nested_spans_link_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.event("mid")
        inner = tracer.spans("inner")[0]
        outer = tracer.spans("outer")[0]
        event = tracer.events("mid")[0]
        assert inner["parent"] == outer["id"]
        assert event["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_exception_marks_err_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (rec,) = tracer.spans("boom")
        assert rec["status"] == "err"
        assert rec["tags"]["error"] == "RuntimeError"

    def test_threads_get_their_own_roots(self):
        tracer = Tracer()

        def in_thread():
            with tracer.span("thread-root"):
                pass

        with tracer.span("main-root"):
            t = threading.Thread(target=in_thread)
            t.start()
            t.join()
        assert tracer.spans("thread-root")[0]["parent"] is None

    def test_file_lines_are_strict_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, campaign_id="cafe01") as tracer:
            tracer.event("has-nan", value=float("nan"), inf=float("inf"))
            with tracer.span("s", arr=np.float64("nan")):
                pass
        lines = path.read_text().splitlines()
        records = [_strict_loads(line) for line in lines]
        assert records[0] == pytest.approx(records[0])  # parsed at all
        assert records[0]["campaign"] == "cafe01"
        event = next(r for r in records if r["name"] == "has-nan")
        assert event["tags"]["value"] is None
        assert event["tags"]["inf"] is None
        span = next(r for r in records if r["name"] == "s")
        assert span["tags"]["arr"] is None

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.event("ok")
        with path.open("a") as fh:
            fh.write('{"type": "event", "name"')  # killed mid-write
        records = read_trace(path)
        assert [r["name"] for r in records] == ["trace.start", "ok"]

    def test_keep_in_memory_false_still_streams(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, keep_in_memory=False) as tracer:
            tracer.event("streamed")
            assert tracer.records == []
        assert any(r["name"] == "streamed" for r in read_trace(path))

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", k=1) as span:
            span.tag(more=2)
        NULL_TRACER.event("anything")
        assert NULL_TRACER.records == []

    def test_use_tracer_scopes_the_global(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER or not get_tracer().enabled
        set_tracer(previous)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_unit_and_bulk(self):
        c = MetricsRegistry().counter("c")
        c.inc()
        c.inc()
        c.inc(3.5)
        assert c.value == pytest.approx(5.5)

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_counter_threaded_increments_all_land(self):
        c = MetricsRegistry().counter("c")
        n, per = 8, 5000

        def bump():
            for _ in range(per):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per

    def test_gauge_inc_dec_set(self):
        g = MetricsRegistry().gauge("g")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        g.set(10.0)
        assert g.value == 10.0
        g.inc(2.5)
        assert g.value == 12.5

    def test_histogram_buckets_and_quantile(self):
        h = MetricsRegistry().histogram("h", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(106.05)
        summary = h.summary()
        assert summary["buckets"] == {
            "0.1": 1,
            "1.0": 2,
            "10.0": 1,
            "+Inf": 1,
        }
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 10.0  # +Inf tail reports last bound

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        assert reg.names() == ["x"]

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert snap["a"] == 1.0
        assert snap["b"] == 2.0
        assert snap["c"]["count"] == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("tasks_total").inc(2)
        reg.gauge("busy").set(1)
        reg.histogram("wait.seconds", buckets=[1.0]).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE tasks_total counter" in text
        assert "tasks_total 2" in text
        assert "# TYPE busy gauge" in text
        # dots sanitized, cumulative buckets with +Inf, sum and count
        assert 'wait_seconds_bucket{le="1"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 1' in text
        assert "wait_seconds_count 1" in text
        assert text.endswith("\n")


class TestPrometheusHardening:
    """The exporter must survive hostile label values and reject
    malformed names loudly at the instrumentation site."""

    def test_escape_label_value_reserved_characters(self):
        assert escape_label_value("plain") == "plain"
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("two\nlines") == "two\\nlines"
        # order matters: the backslash introduced by the quote escape
        # must not itself be re-escaped
        assert escape_label_value('\\"') == '\\\\\\"'
        # non-strings are coerced, UTF-8 passes through untouched
        assert escape_label_value(7) == "7"
        assert escape_label_value("héhé") == "héhé"

    def test_labeled_series_render_sorted_and_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "evals_total", labels={"worker": "pool-0", "mode": "gen"}
        ).inc(3)
        text = reg.to_prometheus()
        # label names sort alphabetically regardless of insert order
        assert 'evals_total{mode="gen",worker="pool-0"} 3' in text

    def test_hostile_label_values_survive_export(self):
        reg = MetricsRegistry()
        hostile = 'a\\b "quoted"\nnewline'
        reg.gauge("g", labels={"task": hostile}).set(1)
        text = reg.to_prometheus()
        line = next(
            li for li in text.splitlines() if li.startswith("g{")
        )
        assert "\n" not in line  # the raw newline never leaks
        assert 'task="a\\\\b \\"quoted\\"\\nnewline"' in line

    def test_invalid_metric_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid Prometheus metric"):
            reg.counter("0leading_digit")
        with pytest.raises(ValueError, match="invalid Prometheus metric"):
            reg.gauge("has space")
        with pytest.raises(ValueError, match="invalid Prometheus metric"):
            reg.histogram("sneaky\nname")

    def test_invalid_label_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid Prometheus label"):
            reg.counter("ok", labels={"bad-dash": "v"})
        with pytest.raises(ValueError, match="invalid Prometheus label"):
            reg.gauge("ok", labels={"has:colon": "v"})

    def test_label_sets_are_distinct_series_sharing_one_type_header(self):
        reg = MetricsRegistry()
        reg.counter("tasks_total", labels={"worker": "pool-0"}).inc()
        reg.counter("tasks_total", labels={"worker": "pool-1"}).inc(2)
        # same name + same labels re-fetches the same instrument
        again = reg.counter("tasks_total", labels={"worker": "pool-0"})
        again.inc()
        text = reg.to_prometheus()
        assert text.count("# TYPE tasks_total counter") == 1
        assert 'tasks_total{worker="pool-0"} 2' in text
        assert 'tasks_total{worker="pool-1"} 2' in text

    def test_labeled_histogram_merges_le_with_labels(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "run_seconds", buckets=[1.0], labels={"worker": "pool-0"}
        )
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert 'run_seconds_bucket{worker="pool-0",le="1"} 1' in text
        assert 'run_seconds_bucket{worker="pool-0",le="+Inf"} 2' in text
        assert 'run_seconds_sum{worker="pool-0"} 5.5' in text
        assert 'run_seconds_count{worker="pool-0"} 2' in text

    def test_snapshot_keys_include_label_sets(self):
        reg = MetricsRegistry()
        reg.gauge("depth", labels={"queue": "main"}).set(4)
        snap = reg.snapshot()
        assert snap['depth{queue="main"}'] == 4.0


# ----------------------------------------------------------------------
# scheduler task lifecycle
# ----------------------------------------------------------------------
class TestSchedulerLifecycle:
    def _traced_scheduler(self, **kwargs) -> Scheduler:
        sched = Scheduler(tracer=Tracer(), **kwargs)
        sched.register_worker(_DummyWorker())
        return sched

    def test_timeline_orders_submit_queued_running_done(self):
        sched = self._traced_scheduler()
        fut = sched.submit(lambda: 42)
        record = sched.next_task()
        sched.task_done(record, 42)
        assert fut.result(timeout=1) == 42
        times = dict(record.timeline)
        assert set(times) == {"submit", "queued", "running", "done"}
        assert (
            times["submit"]
            <= times["queued"]
            <= times["running"]
            <= times["done"]
        )

    def test_retry_increments_reassignments_exactly_once_per_requeue(
        self,
    ):
        sched = self._traced_scheduler(max_retries=2)
        fut = sched.submit(lambda: None)
        for expected in (1, 2):
            record = sched.next_task()
            sched.worker_died(record, f"w{expected}")
            assert sched.stats()["reassignments"] == expected
            assert sched.stats()["failed"] == 0
        # third death exhausts max_retries: failed, not reassigned
        record = sched.next_task()
        sched.worker_died(record, "w3")
        stats = sched.stats()
        assert stats["reassignments"] == 2
        assert stats["failed"] == 1
        with pytest.raises(WorkerFailure, match="abandoned"):
            fut.result(timeout=1)
        # every requeue re-marked the task queued; final state abandoned
        events = [name for name, _ in record.timeline]
        assert events.count("queued") == 3  # submit + 2 retries
        assert events[-1] == "abandoned"

    def test_worker_died_with_no_workers_fails_immediately(self):
        sched = Scheduler(tracer=Tracer(), max_retries=5)
        fut = sched.submit(lambda: None)
        record = sched.next_task()
        # the only worker died and nothing is registered: no retry
        sched.worker_died(record, "w0")
        assert sched.stats()["reassignments"] == 0
        assert sched.stats()["failed"] == 1
        with pytest.raises(WorkerFailure):
            fut.result(timeout=1)

    def test_task_erred_marks_err_not_retry(self):
        sched = self._traced_scheduler()
        fut = sched.submit(lambda: None)
        record = sched.next_task()
        sched.task_erred(record, ValueError("bad hyperparameters"))
        assert sched.stats()["failed"] == 1
        assert sched.stats()["reassignments"] == 0
        assert record.last("err") is not None
        with pytest.raises(ValueError):
            fut.result(timeout=1)

    def test_stats_keeps_legacy_keys(self):
        sched = Scheduler()
        assert set(sched.stats()) == {
            "submitted",
            "completed",
            "failed",
            "reassignments",
            "requeued",
            "cached",
            "workers",
        }
        assert sched.tasks_submitted == 0
        assert sched.tasks_completed == 0
        assert sched.tasks_failed == 0
        assert sched.reassignments == 0
        assert sched.tasks_requeued == 0

    def test_queue_wait_histogram_observed_per_task(self):
        sched = self._traced_scheduler()
        for _ in range(3):
            sched.submit(lambda: None)
            record = sched.next_task()
            sched.task_done(record, None)
        hist = sched.metrics.histogram("scheduler_task_queue_wait_seconds")
        assert hist.count == 3
        assert sched.metrics.histogram("scheduler_task_run_seconds").count == 3

    def test_null_tracer_skips_timeline_but_counts(self):
        sched = Scheduler()  # default: process-wide null tracer
        sched.register_worker(_DummyWorker())
        fut = sched.submit(lambda: 1)
        record = sched.next_task()
        sched.task_done(record, 1)
        assert fut.result(timeout=1) == 1
        assert record.timeline == []  # marks gated off
        assert sched.stats()["submitted"] == 1
        assert sched.stats()["completed"] == 1


class TestTracedClusterConcurrency:
    def test_counts_consistent_under_concurrency(self):
        tracer = Tracer()
        n_tasks = 100
        with LocalCluster(n_workers=4, tracer=tracer) as cluster:
            client = cluster.client()
            futures = client.map(lambda x: x * 2, range(n_tasks))
            results = client.gather(futures, timeout=30)
        assert sorted(results) == [2 * i for i in range(n_tasks)]
        stats = cluster.scheduler.stats()
        assert stats["submitted"] == n_tasks
        assert stats["completed"] == n_tasks
        assert stats["failed"] == 0
        task_spans = tracer.spans("worker.task")
        assert len(task_spans) == n_tasks
        # submit events precede each task's execution span
        submit_at = {
            e["tags"]["task"]: e["mono"]
            for e in tracer.events("task.submit")
        }
        assert len(submit_at) == n_tasks
        for span in task_spans:
            assert span["mono"] >= submit_at[span["tags"]["task"]]
        # executed-task counter agrees with the scheduler
        executed = cluster.scheduler.metrics.counter(
            "worker_tasks_executed_total"
        )
        assert executed.value == n_tasks
        # the busy gauge returned to idle
        assert cluster.scheduler.metrics.gauge("workers_busy").value == 0


# ----------------------------------------------------------------------
# run journal strictness
# ----------------------------------------------------------------------
def _record_without_viables(n_failures: int = 2) -> GenerationRecord:
    return GenerationRecord(
        generation=0,
        population=[],
        evaluated=[],
        std=np.array([0.1, 0.2]),
        n_failures=n_failures,
    )


class TestRunLoggerStrictJson:
    def test_no_viable_generation_writes_null_not_nan(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunLogger(path)(0, _record_without_viables())
        (line,) = path.read_text().splitlines()
        event = _strict_loads(line)  # raises on a bare NaN token
        assert event["best_force"] is None
        assert event["best_energy"] is None
        assert event["median_force"] is None
        assert "NaN" not in line

    def test_journal_shares_campaign_id_with_tracer(self, tmp_path):
        tracer = Tracer(campaign_id="cafe02")
        registry = MetricsRegistry()
        logger = RunLogger(
            tmp_path / "j.jsonl", tracer=tracer, metrics=registry
        )
        logger(1, _record_without_viables(n_failures=3))
        (event,) = read_runlog(tmp_path / "j.jsonl")
        assert event["campaign"] == "cafe02"
        (trace_event,) = tracer.events("generation.logged")
        assert trace_event["tags"]["run"] == 1
        assert registry.counter("runlog_events_total").value == 1
        assert registry.counter("runlog_failures_total").value == 3

    def test_summarize_tolerates_missing_keys_and_nulls(self):
        events = [
            {"run": 0, "evaluated": 5, "best_force": None},
            {"generation": 1},  # journal from an older version
            {"run": 0, "evaluated": None, "failures": 2},
        ]
        digest = summarize_runlog(events)
        assert digest["runs"] == 1
        assert digest["generations"] == 3
        assert digest["evaluations"] == 5
        assert digest["failures"] == 2
        assert np.isnan(digest["best_force"])


# ----------------------------------------------------------------------
# trace report + CLI
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_trace(tmp_path_factory):
    """A real trace captured from a traced LocalCluster run."""
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    tracer = Tracer(path, campaign_id="cafe03")
    with LocalCluster(n_workers=2, tracer=tracer) as cluster:
        client = cluster.client()
        client.gather(client.map(lambda x: x + 1, range(20)), timeout=30)
    tracer.close()
    return path


class TestTraceReport:
    def test_breakdown_and_utilization(self, cluster_trace):
        records = read_trace(cluster_trace)
        breakdown = wallclock_breakdown(records)
        assert any(r["span"] == "worker.task" for r in breakdown)
        task_row = next(r for r in breakdown if r["span"] == "worker.task")
        assert task_row["count"] == 20
        utilization = worker_utilization(records)
        # tiny tasks: one worker may drain the queue before the other
        # starts, but every executed task is attributed to a real node
        assert utilization
        assert {r["worker"] for r in utilization} <= {
            "node-000",
            "node-001",
        }
        assert sum(r["tasks"] for r in utilization) == 20

    def test_straggler_summary_joins_submit_to_span(self, cluster_trace):
        summary = straggler_summary(read_trace(cluster_trace), top=3)
        assert summary["n_tasks"] == 20
        assert len(summary["queue_waits"]) == 20
        assert len(summary["slowest"]) == 3
        assert summary["retries"] == 0

    def test_render_contains_all_sections(self, cluster_trace):
        text = render_trace_report(read_trace(cluster_trace))
        assert "campaign cafe03" in text
        assert "wall-clock breakdown by span" in text
        assert "worker utilization" in text
        assert "slowest tasks" in text
        assert "task run-time distribution" in text

    def test_cli_trace_subcommand(self, cluster_trace, capsys):
        assert hpo_main(["trace", str(cluster_trace), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "worker utilization" in out

    def test_cli_trace_missing_file(self, tmp_path, capsys):
        assert hpo_main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err


def _task_span(task, worker, mono=1.0, dur=0.1, status="ok"):
    return {
        "type": "span",
        "name": "worker.task",
        "mono": mono,
        "dur": dur,
        "status": status,
        "tags": {"task": task, "worker": worker},
    }


def _trace_event(name, mono=0.0, **tags):
    return {"type": "event", "name": name, "mono": mono, "tags": tags}


class TestPoolFaultLedger:
    """The pool backend's fault events must surface in the report —
    otherwise pool campaigns silently under-report their faults."""

    def _records(self):
        return [
            _trace_event("task.submit", mono=0.5, task="pool-task-1"),
            _trace_event("task.submit", mono=0.6, task="pool-task-2"),
            _task_span("pool-task-1", "pool-0", mono=1.0),
            _task_span("pool-task-2", "pool-1", mono=1.1),
            _trace_event("pool.worker_death", mono=2.0, worker="pool-0"),
            _trace_event(
                "pool.worker_respawn", mono=2.1, worker="pool-0"
            ),
            _trace_event("pool.worker_death", mono=3.0, worker="pool-1"),
            _trace_event(
                "pool.worker_respawn", mono=3.1, worker="pool-1"
            ),
            _trace_event(
                "pool.deadline_kill", mono=4.0, task="pool-task-2"
            ),
            _trace_event("task.requeued", mono=4.1, task="pool-task-2"),
        ]

    def test_straggler_summary_counts_pool_events(self):
        summary = straggler_summary(self._records())
        assert summary["pool_worker_deaths"] == 2
        assert summary["pool_respawns"] == 2
        assert summary["pool_deadline_kills"] == 1
        assert summary["requeued"] == 1

    def test_render_shows_pool_line_when_nonzero(self):
        text = render_trace_report(self._records())
        assert "pool: worker deaths: 2  respawns: 2  deadline kills: 1" in text
        assert "requeued: 1" in text

    def test_render_omits_pool_line_when_clean(self):
        clean = [
            _trace_event("task.submit", mono=0.5, task="t1"),
            _task_span("t1", "pool-0"),
            _task_span("t2", "pool-1"),
        ]
        summary = straggler_summary(clean)
        assert summary["pool_worker_deaths"] == 0
        assert summary["pool_respawns"] == 0
        assert summary["pool_deadline_kills"] == 0
        assert "pool: worker deaths" not in render_trace_report(clean)


class TestCampaignTraceEndToEnd:
    def test_campaign_cli_writes_renderable_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "campaign-trace.jsonl"
        rc = hpo_main(
            [
                "campaign",
                "--runs",
                "1",
                "--pop-size",
                "10",
                "--generations",
                "2",
                "--seed",
                "7",
                "--trace",
                str(trace_path),
            ]
        )
        assert rc == 0
        assert "repro-hpo trace" in capsys.readouterr().out
        records = read_trace(trace_path)
        # every line is strict JSON
        for line in trace_path.read_text().splitlines():
            _strict_loads(line)
        names = {r["name"] for r in records}
        assert "campaign.run" in names
        assert "ea.generation" in names
        gens = [r for r in records if r.get("name") == "ea.generation"]
        assert len(gens) == 3  # init + 2 generations
        assert hpo_main(["trace", str(trace_path)]) == 0
        assert "wall-clock breakdown" in capsys.readouterr().out

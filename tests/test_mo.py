"""Tests for multiobjective utilities: dominance, Pareto archives,
quality indicators, and the ZDT suite."""

import numpy as np
import pytest

from repro.evo.individual import Individual, MAXINT
from repro.evo.problem import ConstantProblem
from repro.mo.dominance import (
    dominates,
    non_dominated_mask,
    pareto_front_indices,
)
from repro.mo.metrics import (
    generational_distance,
    hypervolume_2d,
    inverted_generational_distance,
    spread_2d,
)
from repro.mo.pareto import ParetoArchive, pareto_front
from repro.mo.testsuite import ZDT1, ZDT2, ZDT3, ZDT4, ZDT6


def _ind(fitness) -> Individual:
    ind = Individual([0.0], problem=ConstantProblem(fitness))
    return ind.evaluate()


class TestNonDominatedMask:
    def test_staircase_all_kept(self):
        F = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        assert non_dominated_mask(F).all()

    def test_dominated_point_dropped(self):
        F = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert non_dominated_mask(F).tolist() == [True, False]

    def test_duplicates_of_front_point_kept(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert non_dominated_mask(F).tolist() == [True, True, False]

    def test_empty(self):
        assert len(non_dominated_mask(np.zeros((0, 2)))) == 0

    def test_front_indices_sorted_by_first_objective(self):
        F = np.array([[2.0, 0.0], [0.0, 2.0], [1.0, 1.0], [3.0, 3.0]])
        idx = pareto_front_indices(F)
        assert F[idx][:, 0].tolist() == [0.0, 1.0, 2.0]

    def test_dominates_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates(np.array([1.0]), np.array([1.0, 2.0]))


class TestParetoFront:
    def test_excludes_failures(self):
        good = _ind([1.0, 1.0])
        failed = _ind([MAXINT, MAXINT])
        front = pareto_front([good, failed])
        assert front == [good]

    def test_include_failures_when_asked(self):
        failed = _ind([MAXINT, MAXINT])
        front = pareto_front([failed], require_viable=False)
        assert front == [failed]

    def test_sorted_by_first_objective(self):
        inds = [_ind([2.0, 0.0]), _ind([0.0, 2.0]), _ind([1.0, 1.0])]
        front = pareto_front(inds)
        assert [f.fitness[0] for f in front] == [0.0, 1.0, 2.0]

    def test_empty_population(self):
        assert pareto_front([]) == []


class TestParetoArchive:
    def test_add_non_dominated(self):
        archive = ParetoArchive()
        assert archive.add(_ind([1.0, 2.0]))
        assert archive.add(_ind([2.0, 1.0]))
        assert len(archive) == 2

    def test_dominated_rejected(self):
        archive = ParetoArchive()
        archive.add(_ind([1.0, 1.0]))
        assert not archive.add(_ind([2.0, 2.0]))
        assert len(archive) == 1

    def test_dominating_evicts(self):
        archive = ParetoArchive()
        archive.add(_ind([2.0, 2.0]))
        assert archive.add(_ind([1.0, 1.0]))
        assert len(archive) == 1
        assert np.allclose(archive.members[0].fitness, [1.0, 1.0])

    def test_duplicate_rejected(self):
        archive = ParetoArchive()
        archive.add(_ind([1.0, 1.0]))
        assert not archive.add(_ind([1.0, 1.0]))

    def test_failed_individual_rejected(self):
        archive = ParetoArchive()
        assert not archive.add(_ind([MAXINT, MAXINT]))

    def test_unevaluated_raises(self):
        archive = ParetoArchive()
        with pytest.raises(ValueError):
            archive.add(Individual([0.0]))

    def test_capacity_eviction_keeps_extremes(self):
        archive = ParetoArchive(capacity=3)
        points = [[0.0, 1.0], [0.45, 0.55], [0.5, 0.5], [1.0, 0.0]]
        for p in points:
            archive.add(_ind(p))
        assert len(archive) == 3
        F = archive.fitness_matrix()
        assert [0.0, 1.0] in F.tolist()
        assert [1.0, 0.0] in F.tolist()

    def test_add_all_counts(self):
        archive = ParetoArchive()
        n = archive.add_all(
            [_ind([1.0, 2.0]), _ind([2.0, 1.0]), _ind([3.0, 3.0])]
        )
        assert n == 2


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d(np.array([[0.5, 0.5]]), reference=(1.0, 1.0))
        assert np.isclose(hv, 0.25)

    def test_staircase(self):
        F = np.array([[0.0, 0.5], [0.5, 0.0]])
        hv = hypervolume_2d(F, reference=(1.0, 1.0))
        assert np.isclose(hv, 0.75)

    def test_dominated_points_dont_add(self):
        F1 = np.array([[0.5, 0.5]])
        F2 = np.array([[0.5, 0.5], [0.7, 0.7]])
        assert np.isclose(
            hypervolume_2d(F1, (1, 1)), hypervolume_2d(F2, (1, 1))
        )

    def test_points_beyond_reference_ignored(self):
        F = np.array([[2.0, 2.0]])
        assert hypervolume_2d(F, (1.0, 1.0)) == 0.0

    def test_empty_front(self):
        assert hypervolume_2d(np.zeros((0, 2)), (1.0, 1.0)) == 0.0

    def test_monotone_in_points(self):
        F1 = np.array([[0.5, 0.5]])
        F2 = np.array([[0.5, 0.5], [0.2, 0.8]])
        assert hypervolume_2d(F2, (1, 1)) > hypervolume_2d(F1, (1, 1))

    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.ones((2, 3)), (1, 1))


class TestDistances:
    def test_gd_zero_when_on_front(self):
        ref = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert generational_distance(ref, ref) == 0.0

    def test_gd_positive_off_front(self):
        ref = np.array([[0.0, 0.0]])
        front = np.array([[3.0, 4.0]])
        assert np.isclose(generational_distance(front, ref), 5.0)

    def test_igd_penalizes_poor_coverage(self):
        ref = np.array([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        full = ref
        partial = np.array([[0.0, 1.0]])
        assert inverted_generational_distance(
            partial, ref
        ) > inverted_generational_distance(full, ref)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            generational_distance(np.zeros((0, 2)), np.ones((1, 2)))

    def test_spread_uniform_is_zero(self):
        F = np.column_stack(
            [np.linspace(0, 1, 11), np.linspace(1, 0, 11)]
        )
        assert spread_2d(F) < 1e-12

    def test_spread_clustered_is_positive(self):
        F = np.array(
            [[0.0, 1.0], [0.01, 0.99], [0.02, 0.98], [1.0, 0.0]]
        )
        assert spread_2d(F) > 0.3

    def test_spread_needs_three_points(self):
        assert np.isnan(spread_2d(np.array([[0.0, 1.0], [1.0, 0.0]])))


class TestZDT:
    @pytest.mark.parametrize("cls", [ZDT1, ZDT2, ZDT3, ZDT4, ZDT6])
    def test_two_objectives(self, cls):
        prob = cls()
        x = np.full(prob.n_variables, 0.5)
        f = prob.evaluate(x)
        assert f.shape == (2,)

    @pytest.mark.parametrize("cls", [ZDT1, ZDT2])
    def test_optimal_solutions_on_true_front(self, cls):
        prob = cls(n_variables=5)
        # optimum: x[1:] = 0
        for f1 in (0.0, 0.3, 1.0):
            x = np.zeros(5)
            x[0] = f1
            f = prob.evaluate(x)
            front = prob.true_front(1001)
            d = np.min(np.linalg.norm(front - f, axis=1))
            assert d < 5e-3

    def test_zdt4_bounds_shape(self):
        prob = ZDT4(n_variables=6)
        b = prob.bounds
        assert b.shape == (6, 2)
        assert b[0].tolist() == [0.0, 1.0]
        assert b[1].tolist() == [-5.0, 5.0]

    def test_zdt3_front_nondominated(self):
        from repro.mo.dominance import non_dominated_mask

        front = ZDT3().true_front()
        assert non_dominated_mask(front).all()

    def test_zdt6_nonuniform_mapping(self):
        prob = ZDT6(n_variables=4)
        x = np.zeros(4)
        f = prob.evaluate(x)
        assert np.isfinite(f).all()

    def test_min_variables_enforced(self):
        with pytest.raises(ValueError):
            ZDT1(n_variables=1)

    def test_g_is_one_at_optimum(self):
        prob = ZDT1(n_variables=4)
        assert np.isclose(prob._g(np.zeros(4)), 1.0)

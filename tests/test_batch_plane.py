"""Batch-first evaluation data plane: bit-identity and isolation.

The contract under test (DESIGN.md "Evaluation data plane"): routing a
population through ``EvaluationEngine.evaluate_batch`` — or a whole
NSGA-II run through ``batch``/``pipeline`` mode — must be
*bit-identical* to the scalar submit-per-individual path: same fronts,
same journal records, same engine statistics.  Failure isolation is
per-slot in-process and per-chunk across the pool (a worker crash
MAXINTs only the chunk it held).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import Fault, FaultPlan
from repro.engine import EvaluationEngine, call_problem, call_problem_batch
from repro.engine.pool import ProcessPoolBackend
from repro.evo.algorithm import generational_nsga2
from repro.evo.individual import MAXINT, RobustIndividual
from repro.evo.problem import WithMetadataProblem
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.representation import DeepMDRepresentation
from repro.injection import use_injector
from repro.store import CachedProblem, EvaluationCache


class CountingSurrogate(SurrogateDeepMDProblem):
    """Surrogate that counts batch-path invocations (and, by
    subclassing nothing else, still takes the vectorized path)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.batch_calls = 0

    def evaluate_batch_with_metadata(self, phenomes, uuids=None):
        self.batch_calls += 1
        return super().evaluate_batch_with_metadata(phenomes, uuids=uuids)


class FlakyProblem(WithMetadataProblem):
    """Deterministic per-phenome pass/fail for isolation tests."""

    n_objectives = 2

    def evaluate_with_metadata(self, phenome, uuid=None):
        x = float(phenome["x"])
        if x < 0:
            raise ValueError(f"negative input {x}")
        return np.array([x, x * x]), {"phenome": dict(phenome), "failed": False}


class DictDecoder:
    """Genome ``[x]`` → phenome ``{"x": x}`` (module-level: picklable)."""

    def decode(self, genome):
        return {"x": float(genome[0])}


class SurrogateGenomeDecoder:
    """Genome ``[rcut]`` → a full valid surrogate phenome."""

    def decode(self, genome):
        return {
            "rcut": float(genome[0]),
            "rcut_smth": 1.0,
            "start_lr": 0.001,
            "stop_lr": 1e-8,
            "fitting_activ_func": "tanh",
            "desc_activ_func": "tanh",
            "scale_by_worker": "none",
        }


def _flaky_individuals(xs):
    problem = FlakyProblem()
    decoder = DictDecoder()
    return [
        RobustIndividual(np.array([float(x)]), decoder=decoder, problem=problem)
        for x in xs
    ]


class RecordingJournal:
    """Duck-typed CampaignJournal capturing generation commits."""

    def __init__(self):
        self.entries = []

    def append_generation(self, record, rng_state=None):
        self.entries.append(
            (
                record.generation,
                record.fitness_matrix().copy(),
                record.evaluated_fitness_matrix().copy(),
                record.std.copy(),
                record.n_failures,
                rng_state,
            )
        )


def _stats_tuple(stats):
    return (
        stats.submitted,
        stats.completed,
        stats.fresh,
        stats.cache_hits,
        stats.dedup_hits,
        stats.failures,
        stats.timeouts,
    )


def _run_nsga2(seed, **mode):
    rep = DeepMDRepresentation
    problem = SurrogateDeepMDProblem(seed=7)
    engine = EvaluationEngine(dedup=True, dedup_scope="batch")
    journal = RecordingJournal()
    records = generational_nsga2(
        problem,
        rep.init_ranges,
        rep.mutation_std,
        pop_size=8,
        generations=2,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        rng=np.random.default_rng(seed),
        engine=engine,
        journal=journal,
        **mode,
    )
    return records, journal, engine


class TestBatchBitIdentity:
    """Scalar vs batch vs pipeline: everything observable matches."""

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=8, deadline=None)
    def test_modes_bit_identical(self, seed):
        scalar = _run_nsga2(seed)
        batch = _run_nsga2(seed, batch=True)
        pipeline = _run_nsga2(seed, pipeline=True)
        for name, other in (("batch", batch), ("pipeline", pipeline)):
            recs_a, journal_a, eng_a = scalar
            recs_b, journal_b, eng_b = other
            assert len(recs_a) == len(recs_b), name
            for ra, rb in zip(recs_a, recs_b):
                assert ra.generation == rb.generation
                assert np.array_equal(
                    ra.fitness_matrix(), rb.fitness_matrix()
                ), name
                assert np.array_equal(
                    ra.evaluated_fitness_matrix(),
                    rb.evaluated_fitness_matrix(),
                ), name
                assert np.array_equal(ra.std, rb.std)
                assert ra.n_failures == rb.n_failures
            # journal: same records, same order, same RNG states
            assert len(journal_a.entries) == len(journal_b.entries)
            for ea, eb in zip(journal_a.entries, journal_b.entries):
                assert ea[0] == eb[0]
                assert np.array_equal(ea[1], eb[1])
                assert np.array_equal(ea[2], eb[2])
                assert ea[5] == eb[5], f"{name}: rng state diverged"
            assert _stats_tuple(eng_a.stats) == _stats_tuple(eng_b.stats)

    @given(
        xs=st.lists(
            st.integers(min_value=-5, max_value=5), min_size=1, max_size=12
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_batch_matches_scalar_with_failures_and_dups(self, xs):
        """Duplicates, failures, and order survive the batch plane."""
        eng_a = EvaluationEngine(dedup=True, dedup_scope="batch")
        eng_b = EvaluationEngine(dedup=True, dedup_scope="batch")
        a = eng_a.evaluate(_flaky_individuals(xs))
        b = eng_b.evaluate_batch(_flaky_individuals(xs))
        assert np.array_equal(
            np.array([i.fitness for i in a]),
            np.array([i.fitness for i in b]),
        )
        for ia, ib in zip(a, b):
            assert ia.metadata.get("failed", False) == ib.metadata.get(
                "failed", False
            )
            assert ia.metadata.get("error") == ib.metadata.get("error")
        assert _stats_tuple(eng_a.stats) == _stats_tuple(eng_b.stats)


class TestBatchWrappers:
    def test_default_batch_isolates_failing_slot(self):
        problem = FlakyProblem()
        outcomes = call_problem_batch(
            problem, [{"x": 1.0}, {"x": -2.0}, {"x": 3.0}]
        )
        assert isinstance(outcomes[1], ValueError)
        fit0, meta0 = outcomes[0]
        assert np.array_equal(fit0, [1.0, 1.0])
        assert meta0["failed"] is False
        fit2, _ = outcomes[2]
        assert np.array_equal(fit2, [3.0, 9.0])

    def test_cached_problem_batch_executes_only_misses(self, tmp_path):
        inner = CountingSurrogate(seed=3)
        cached = CachedProblem(inner, EvaluationCache(tmp_path / "c"))
        dec = SurrogateGenomeDecoder()
        phenomes = [dec.decode([6.0 + 0.1 * i]) for i in range(6)]
        # prime half the cache through the scalar path
        primed = [call_problem(cached, p) for p in phenomes[:3]]
        evals_before = inner.evaluations
        outcomes = cached.evaluate_batch_with_metadata(phenomes)
        assert inner.evaluations - evals_before == 3  # only the misses
        for (fit_scalar, _), slot in zip(primed, outcomes[:3]):
            fit_batch, meta = slot
            assert np.array_equal(fit_scalar, fit_batch)
            assert meta["cache_hit"] is True
        for slot in outcomes[3:]:
            _, meta = slot
            assert "cache_hit" not in meta
        # a second batch is all hits: the inner problem is not called
        calls_before = inner.batch_calls
        again = cached.evaluate_batch_with_metadata(phenomes)
        assert inner.batch_calls == calls_before
        for a, b in zip(outcomes, again):
            assert np.array_equal(a[0], b[0])

    def test_cached_problem_batch_replays_memoized_failures(self, tmp_path):
        from repro.store.cache import CachedFailure

        problem = FlakyProblem()
        cached = CachedProblem(
            problem, EvaluationCache(tmp_path / "c", cache_failures=True)
        )
        first = cached.evaluate_batch_with_metadata([{"x": -1.0}, {"x": 2.0}])
        assert isinstance(first[0], ValueError)
        replay = cached.evaluate_batch_with_metadata([{"x": -1.0}, {"x": 2.0}])
        assert isinstance(replay[0], CachedFailure)
        assert replay[0].metadata["cache_hit"] is True
        _, meta = replay[1]
        assert meta["cache_hit"] is True

    def test_surrogate_batch_slots_match_scalar_calls(self):
        problem = SurrogateDeepMDProblem(seed=13)
        dec = SurrogateGenomeDecoder()
        phenomes = [dec.decode([5.5 + 0.25 * i]) for i in range(8)]
        # include a deterministic failure: rcut_smth >= rcut
        phenomes.append({**phenomes[0], "rcut_smth": 99.0})
        batch = call_problem_batch(problem, phenomes)
        for phenome, slot in zip(phenomes, batch):
            try:
                fit, meta = call_problem(problem, phenome)
            except Exception as exc:
                assert isinstance(slot, BaseException)
                assert str(slot) == str(exc)
                assert slot.metadata["failure_cause"] == (
                    exc.metadata["failure_cause"]
                )
            else:
                assert np.array_equal(fit, slot[0])
                assert meta == slot[1]


@pytest.mark.slow
class TestPoolChunkIsolation:
    def test_worker_crash_maxints_only_its_chunk(self):
        """§2.2.4 at chunk granularity: a worker death fails the chunk
        it held, and nothing else."""
        problem = SurrogateDeepMDProblem(seed=7)
        decoder = SurrogateGenomeDecoder()
        individuals = [
            RobustIndividual(
                np.array([6.0 + 0.1 * i]), decoder=decoder, problem=problem
            )
            for i in range(9)
        ]
        plan = FaultPlan([Fault(kind="worker_death", at=0, worker="pool-1")])
        with use_injector(plan.injector()):
            with ProcessPoolBackend(workers=3) as backend:
                engine = EvaluationEngine(client=backend)
                done = engine.evaluate_batch(individuals, chunk_size=3)
        fitness = np.array([ind.fitness for ind in done])
        maxed = [i for i, row in enumerate(fitness) if row[0] == MAXINT]
        # lowest-index-first dispatch: pool-1 held the second chunk
        assert maxed == [3, 4, 5]
        assert engine.stats.failures == 3
        assert engine.stats.completed == 9
        for i in maxed:
            assert "WorkerFailure" in done[i].metadata["error"]
        for i in (0, 1, 2, 6, 7, 8):
            assert done[i].metadata["failed"] is False

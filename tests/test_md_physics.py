"""Physics-validation tests: observables (RDF/MSD/VACF) and the Ewald
reference for the DSF electrostatics."""

import numpy as np
import pytest

from repro.md.cell import PeriodicCell
from repro.md.dataset import Frame, generate_dataset
from repro.md.ewald import EwaldCoulomb, madelung_nacl
from repro.md.observables import (
    mean_squared_displacement,
    radial_distribution,
    velocity_autocorrelation,
)
from repro.md.potentials import COULOMB_EV_ANGSTROM, DSFCoulomb


@pytest.fixture(scope="module")
def melt_frames():
    ds = generate_dataset(
        n_frames=30,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=300,
        sample_interval=5,
        rng=31,
    )
    return ds.train + ds.validation


class TestRDF:
    def test_ideal_gas_is_flat(self):
        """Uniform random points have g(r) ~ 1 away from r=0."""
        rng = np.random.default_rng(0)
        cell = PeriodicCell(12.0)
        frames = [
            Frame(
                positions=rng.uniform(0, 12, size=(200, 3)),
                species=np.zeros(200, dtype=int),
                energy=0.0,
                forces=np.zeros((200, 3)),
                box=np.full(3, 12.0),
            )
            for _ in range(5)
        ]
        rdf = radial_distribution(frames, n_bins=30)
        tail = rdf.g[len(rdf.g) // 2 :]
        assert abs(tail.mean() - 1.0) < 0.1

    def test_melt_shows_structure(self, melt_frames):
        """The molten salt has a first coordination peak well above 1."""
        rdf = radial_distribution(melt_frames, n_bins=60)
        pos, height = rdf.first_peak()
        assert height > 1.5
        assert 1.5 < pos < 4.0

    def test_cation_anion_peak_before_cation_cation(self, melt_frames):
        """Charge ordering: the Al-Cl peak sits at shorter range than
        Al-Al (unlike charges attract)."""
        al_cl = radial_distribution(
            melt_frames, n_bins=60, species_a=0, species_b=2
        )
        al_al = radial_distribution(
            melt_frames, n_bins=60, species_a=0, species_b=0
        )
        pos_ac, _ = al_cl.first_peak()
        # Al-Al: find first bin where g exceeds 0.5 as a proxy for
        # the approach distance
        approach = al_al.r[np.argmax(al_al.g > 0.5)]
        assert pos_ac < approach + 1.0

    def test_species_resolution_requires_atoms(self, melt_frames):
        with pytest.raises(ValueError, match="no atoms"):
            radial_distribution(melt_frames, species_a=7)

    def test_r_max_bounded_by_box(self, melt_frames):
        with pytest.raises(ValueError, match="minimum-image"):
            radial_distribution(melt_frames, r_max=100.0)

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError):
            radial_distribution([])


class TestMSD:
    def test_ballistic_motion_quadratic(self):
        """Constant-velocity particles: MSD = (v t)^2."""
        cell = PeriodicCell(100.0)
        v = np.array([0.1, 0.0, 0.0])
        traj = np.array(
            [np.tile(v * t, (5, 1)) + 50.0 for t in range(20)]
        )
        msd = mean_squared_displacement(traj, cell)
        expected = (0.1 * msd.lag_steps) ** 2
        assert np.allclose(msd.msd, expected, rtol=1e-10)

    def test_unwrapping_across_boundary(self):
        """A particle drifting through the periodic boundary must not
        show an MSD jump."""
        cell = PeriodicCell(10.0)
        xs = (9.5 + 0.2 * np.arange(10)) % 10.0
        traj = np.zeros((10, 1, 3))
        traj[:, 0, 0] = xs
        msd = mean_squared_displacement(traj, cell)
        expected = (0.2 * msd.lag_steps) ** 2
        assert np.allclose(msd.msd, expected, atol=1e-12)

    def test_static_particles_zero(self):
        cell = PeriodicCell(10.0)
        traj = np.ones((8, 3, 3))
        msd = mean_squared_displacement(traj, cell)
        assert np.allclose(msd.msd, 0.0)

    def test_diffusion_coefficient_positive_for_melt(self, melt_frames):
        cell = melt_frames[0].cell
        traj = np.stack([f.positions for f in melt_frames])
        msd = mean_squared_displacement(traj, cell)
        D = msd.diffusion_coefficient(dt_fs=10.0)
        assert D > 0.0

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(
                np.zeros((1, 2, 3)), PeriodicCell(5.0)
            )


class TestVACF:
    def test_starts_at_one(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=(20, 10, 3))
        vacf = velocity_autocorrelation(v)
        assert np.isclose(vacf[0], 1.0)

    def test_uncorrelated_noise_decays(self):
        rng = np.random.default_rng(1)
        v = rng.normal(size=(200, 50, 3))
        vacf = velocity_autocorrelation(v, max_lag=20)
        assert np.all(np.abs(vacf[1:]) < 0.2)

    def test_constant_velocity_stays_one(self):
        v = np.ones((30, 5, 3))
        vacf = velocity_autocorrelation(v)
        assert np.allclose(vacf, 1.0)


class TestEwald:
    def test_madelung_constant(self):
        """Absolute correctness anchor: rock-salt Madelung constant."""
        M = madelung_nacl(n_cells=2, k_max=8)
        assert abs(M - 1.747565) < 5e-3

    def test_forces_are_negative_gradient(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 8, size=(6, 3))
        species = np.array([0, 0, 0, 1, 1, 1])
        cell = PeriodicCell(8.0)
        ewald = EwaldCoulomb([1.0, -1.0], k_max=6)
        _, forces = ewald.energy_and_forces(pos, species, cell)
        eps = 1e-5
        for k in range(3):
            p = pos.copy()
            p[1, k] += eps
            ep, _ = ewald.energy_and_forces(p, species, cell)
            p[1, k] -= 2 * eps
            em, _ = ewald.energy_and_forces(p, species, cell)
            assert np.isclose(
                forces[1, k], -(ep - em) / (2 * eps), atol=1e-6
            )

    def test_forces_sum_to_zero(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 9, size=(8, 3))
        species = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        ewald = EwaldCoulomb([1.0, -1.0], k_max=6)
        _, forces = ewald.energy_and_forces(
            pos, species, PeriodicCell(9.0)
        )
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_translation_invariance(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 8, size=(6, 3))
        species = np.array([0, 0, 0, 1, 1, 1])
        cell = PeriodicCell(8.0)
        ewald = EwaldCoulomb([1.0, -1.0], k_max=6)
        e1, _ = ewald.energy_and_forces(pos, species, cell)
        e2, _ = ewald.energy_and_forces(
            cell.wrap(pos + 2.7), species, cell
        )
        assert np.isclose(e1, e2, atol=1e-8)

    def test_dsf_approximates_ewald_for_neutral_melt(self):
        """The production DSF electrostatics track the exact Ewald
        energy differences (what forces/dynamics care about)."""
        rng = np.random.default_rng(4)
        cell = PeriodicCell(10.0)
        species = np.array([0, 0, 0, 0, 1, 1, 1, 1])

        def both(pos):
            ewald = EwaldCoulomb([1.0, -1.0], k_max=7)
            dsf = DSFCoulomb([1.0, -1.0], alpha=0.25, cutoff=4.9)
            e_ew, _ = ewald.energy_and_forces(pos, species, cell)
            e_dsf, _ = dsf.energy_and_forces(pos, species, cell)
            return e_ew, e_dsf

        # energy *differences* between two configurations
        pos1 = rng.uniform(2, 8, size=(8, 3))
        pos2 = pos1 + rng.normal(0, 0.3, size=(8, 3))
        ew1, dsf1 = both(pos1)
        ew2, dsf2 = both(pos2)
        d_ew = ew2 - ew1
        d_dsf = dsf2 - dsf1
        # same sign and same order of magnitude
        assert np.sign(d_ew) == np.sign(d_dsf)
        assert abs(d_dsf - d_ew) < 0.5 * max(abs(d_ew), 1.0)

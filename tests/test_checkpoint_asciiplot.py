"""Tests for training checkpoint/resume and the ASCII plot renderers."""

import numpy as np
import pytest

from repro.analysis.asciiplot import (
    ascii_density,
    ascii_histogram,
    ascii_scatter,
)
from repro.deepmd.descriptor import DescriptorConfig
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.training import Trainer, TrainingConfig
from repro.exceptions import TrainingTimeoutError
from repro.nn.optimizer import Adam
from repro.autodiff.tensor import Tensor


def _trainer(dataset, numb_steps=30, rng=1, **over):
    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=4.0, rcut_smth=1.5),
        embedding_widths=(4, 8),
        axis_neurons=3,
        fitting_widths=(8,),
    )
    model = DeepPotModel(config, rng=0)
    defaults = dict(
        numb_steps=numb_steps,
        batch_size=2,
        disp_freq=numb_steps,
        start_lr=3e-3,
        stop_lr=1e-4,
    )
    defaults.update(over)
    return Trainer(model, dataset, TrainingConfig(**defaults), rng=rng)


class TestAdamState:
    def test_roundtrip(self):
        x = Tensor(np.array([3.0, -2.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        for _ in range(5):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        state = opt.state_dict()
        x2 = Tensor(x.data.copy(), requires_grad=True)
        opt2 = Adam([x2], lr=0.1)
        opt2.load_state_dict(state)
        # both take one more identical step
        for o, t in ((opt, x), (opt2, x2)):
            o.zero_grad()
            (t * t).sum().backward()
            o.step()
        assert np.allclose(x.data, x2.data)

    def test_mismatched_state_rejected(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([x], lr=0.1)
        with pytest.raises(ValueError):
            opt.load_state_dict({"t": 1, "lr": 0.1, "m": [], "v": []})


class TestCheckpointResume:
    def test_split_training_matches_straight_run(self, small_dataset, tmp_path):
        """15 + 15 steps through a checkpoint == 30 straight steps.

        Both runs must see the same batch draws, so the resuming
        trainer continues the interrupted trainer's RNG stream (the
        checkpoint stores model + optimizer state, not the batch
        sampler — same as DeePMD)."""
        straight = _trainer(small_dataset, numb_steps=30, rng=7)
        result_straight = straight.train()

        ckpt = tmp_path / "ckpt.npz"
        first = _trainer(small_dataset, numb_steps=30, rng=7)
        first.train(stop_after=15, checkpoint_path=ckpt)
        second = _trainer(small_dataset, numb_steps=30, rng=7)
        second.rng = first.rng  # continue the same batch draws
        result_split = second.train(resume_from=ckpt)
        assert np.isclose(
            result_split.rmse_f_val, result_straight.rmse_f_val, rtol=1e-10
        )
        assert np.isclose(
            result_split.rmse_e_val, result_straight.rmse_e_val, rtol=1e-10
        )

    def test_timeout_writes_checkpoint(self, small_dataset, tmp_path):
        trainer = _trainer(
            small_dataset, numb_steps=100000, time_limit=0.15
        )
        ckpt = tmp_path / "timeout.npz"
        with pytest.raises(TrainingTimeoutError):
            trainer.train(checkpoint_path=ckpt)
        assert ckpt.exists()
        # and it is loadable
        resumed = _trainer(small_dataset, numb_steps=5)
        next_step = resumed.load_checkpoint(ckpt)
        assert next_step >= 1

    def test_periodic_checkpoints(self, small_dataset, tmp_path):
        trainer = _trainer(small_dataset, numb_steps=20)
        ckpt = tmp_path / "periodic.npz"
        trainer.train(checkpoint_path=ckpt, checkpoint_freq=5)
        assert ckpt.exists()

    def test_checkpoint_restores_model_exactly(self, small_dataset, tmp_path):
        trainer = _trainer(small_dataset, numb_steps=10)
        trainer.train()
        ckpt = tmp_path / "exact.npz"
        trainer.save_checkpoint(ckpt, step=9)
        other = _trainer(small_dataset, numb_steps=10)
        other.load_checkpoint(ckpt)
        for p1, p2 in zip(
            trainer.model.parameters, other.model.parameters
        ):
            assert np.array_equal(p1.data, p2.data)


class TestAsciiPlots:
    def test_density_dimensions(self):
        rng = np.random.default_rng(0)
        out = ascii_density(
            rng.random(500), rng.random(500), width=40, height=10
        )
        lines = out.splitlines()
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 42 for l in body)

    def test_density_shows_mass_where_data_is(self):
        x = np.full(100, 0.1)
        y = np.full(100, 0.9)
        out = ascii_density(
            x, y, width=20, height=10, x_range=(0, 1), y_range=(0, 1)
        )
        body = [l for l in out.splitlines() if l.startswith("|")]
        # densest glyph in the upper rows, left half
        top = "".join(body[:2])
        assert "@" in top
        assert top.index("@") < len(body[0]) // 2

    def test_density_empty_input(self):
        out = ascii_density(np.array([]), np.array([]))
        assert "0 points" in out

    def test_density_shape_mismatch(self):
        with pytest.raises(ValueError):
            ascii_density(np.zeros(3), np.zeros(4))

    def test_scatter_highlights(self):
        pts = [(0.0, 0.0), (1.0, 1.0)]
        out = ascii_scatter(pts, highlight=[(0.5, 0.5)], width=21, height=11)
        assert "O" in out
        assert "·" in out

    def test_scatter_empty(self):
        assert ascii_scatter([]) == "(no points)"

    def test_scatter_degenerate_axis(self):
        out = ascii_scatter([(1.0, 2.0), (1.0, 2.0)])
        assert "|" in out  # renders without dividing by zero

    def test_histogram_counts(self):
        out = ascii_histogram(np.array([1.0, 1.0, 2.0]), bins=2)
        assert "2" in out and "1" in out

    def test_histogram_ignores_nonfinite(self):
        out = ascii_histogram(
            np.array([1.0, np.nan, np.inf, 2.0]), bins=2
        )
        assert "nan" not in out

    def test_histogram_empty(self):
        assert "no finite values" in ascii_histogram(np.array([np.nan]))

"""Tests for NSGA-II sorting, crowding, annealing, and the driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import Context
from repro.evo.algorithm import (
    generational_nsga2,
    random_initial_population,
)
from repro.evo.annealing import AnnealingSchedule, OneFifthSuccessRule
from repro.evo.individual import MAXINT, Individual, RobustIndividual
from repro.evo.nsga2 import (
    crowding_distance,
    crowding_distance_calc,
    dominates,
    fast_nondominated_sort,
    nsga2_select,
    rank_ordinal_sort,
    rank_ordinal_sort_op,
)
from repro.evo.problem import ConstantProblem, FunctionProblem


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))

    def test_equal_does_not_dominate(self):
        assert not dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_partial_better_does_not_dominate(self):
        assert not dominates(np.array([1.0, 3.0]), np.array([2.0, 2.0]))

    def test_one_axis_equal_one_better(self):
        assert dominates(np.array([1.0, 2.0]), np.array([1.0, 3.0]))


class TestFastNondominatedSort:
    def test_single_front(self):
        # all mutually non-dominated along a line
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert np.array_equal(fast_nondominated_sort(F), [1, 1, 1, 1])

    def test_chain_of_fronts(self):
        F = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert np.array_equal(fast_nondominated_sort(F), [1, 2, 3])

    def test_duplicates_share_front(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert np.array_equal(fast_nondominated_sort(F), [1, 1, 2])

    def test_empty(self):
        assert len(fast_nondominated_sort(np.zeros((0, 2)))) == 0

    def test_nan_rejected(self):
        F = np.array([[np.nan, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError, match="NaN"):
            fast_nondominated_sort(F)

    def test_maxint_sorts_last(self):
        F = np.array([[1.0, 2.0], [MAXINT, MAXINT], [2.0, 1.0]])
        ranks = fast_nondominated_sort(F)
        assert ranks[1] == ranks.max()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            fast_nondominated_sort(np.array([1.0, 2.0]))


class TestRankOrdinalSort:
    def test_matches_fast_sort_random(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(2, 80))
            F = rng.normal(size=(n, 2))
            assert np.array_equal(
                rank_ordinal_sort(F), fast_nondominated_sort(F)
            )

    def test_matches_fast_sort_with_ties(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            n = int(rng.integers(2, 60))
            F = rng.integers(0, 5, size=(n, 2)).astype(float)
            assert np.array_equal(
                rank_ordinal_sort(F), fast_nondominated_sort(F)
            )

    def test_matches_fast_sort_three_objectives(self):
        rng = np.random.default_rng(2)
        for _ in range(15):
            n = int(rng.integers(2, 40))
            F = rng.integers(0, 4, size=(n, 3)).astype(float)
            assert np.array_equal(
                rank_ordinal_sort(F), fast_nondominated_sort(F)
            )

    def test_single_objective(self):
        F = np.array([[3.0], [1.0], [2.0], [1.0]])
        assert np.array_equal(rank_ordinal_sort(F), [3, 1, 2, 1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            rank_ordinal_sort(np.array([[np.nan, 1.0]]))

    def test_all_identical(self):
        F = np.ones((5, 2))
        assert np.array_equal(rank_ordinal_sort(F), np.ones(5))

    def test_maxint_failures_rank_behind_everything(self):
        F = np.array(
            [[0.01, 0.1], [MAXINT, MAXINT], [0.02, 0.05], [MAXINT, MAXINT]]
        )
        ranks = rank_ordinal_sort(F)
        assert ranks[0] == ranks[2] == 1
        assert ranks[1] == ranks[3] == 2


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        ranks = np.ones(4, dtype=int)
        d = crowding_distance(F, ranks)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_uniform_spacing_equal_interior(self):
        F = np.column_stack(
            [np.linspace(0, 1, 5), np.linspace(1, 0, 5)]
        )
        d = crowding_distance(F, np.ones(5, dtype=int))
        assert np.isclose(d[1], d[2]) and np.isclose(d[2], d[3])

    def test_small_front_all_infinite(self):
        F = np.array([[1.0, 2.0], [2.0, 1.0]])
        d = crowding_distance(F, np.ones(2, dtype=int))
        assert np.isinf(d).all()

    def test_fronts_independent(self):
        F = np.array([[0.0, 1.0], [1.0, 0.0], [5.0, 6.0], [6.0, 5.0]])
        ranks = np.array([1, 1, 2, 2])
        d = crowding_distance(F, ranks)
        assert np.isinf(d).all()

    def test_degenerate_objective_no_nan(self):
        F = np.array([[1.0, 0.0], [1.0, 0.5], [1.0, 1.0], [1.0, 0.2]])
        d = crowding_distance(F, np.ones(4, dtype=int))
        assert not np.isnan(d).any()

    def test_denser_region_smaller_distance(self):
        F = np.array(
            [[0.0, 1.0], [0.1, 0.9], [0.15, 0.85], [0.6, 0.4], [1.0, 0.0]]
        )
        d = crowding_distance(F, np.ones(5, dtype=int))
        assert d[2] < d[3]


class TestOperators:
    def _evaluated(self, fitnesses):
        out = []
        for f in fitnesses:
            ind = Individual([0.0], problem=ConstantProblem(f))
            ind.evaluate()
            out.append(ind)
        return out

    def test_rank_op_assigns_ranks(self):
        pop = self._evaluated([[0.0, 0.0], [1.0, 1.0]])
        ranked = rank_ordinal_sort_op()(pop)
        assert ranked[0].rank == 1
        assert ranked[1].rank == 2

    def test_rank_op_merges_parents(self):
        parents = self._evaluated([[0.0, 0.0]])
        offspring = self._evaluated([[1.0, 1.0]])
        combined = rank_ordinal_sort_op(parents=parents)(offspring)
        assert len(combined) == 2
        assert {ind.rank for ind in combined} == {1, 2}

    def test_rank_op_unevaluated_raises(self):
        with pytest.raises(ValueError, match="evaluated"):
            rank_ordinal_sort_op()([Individual([0.0])])

    def test_rank_op_unknown_algorithm(self):
        with pytest.raises(ValueError):
            rank_ordinal_sort_op(algorithm="bogo")

    def test_crowding_op_requires_ranks(self):
        pop = self._evaluated([[0.0, 0.0]])
        with pytest.raises(ValueError, match="rank"):
            crowding_distance_calc(pop)

    def test_crowding_op_sets_distance(self):
        pop = self._evaluated([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]])
        ranked = rank_ordinal_sort_op()(pop)
        crowded = crowding_distance_calc(ranked)
        assert all(ind.distance is not None for ind in crowded)

    def test_nsga2_select_keeps_first_front(self):
        pop = self._evaluated(
            [[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [5.0, 5.0], [6.0, 6.0]]
        )
        chosen = nsga2_select(pop, size=3)
        fits = {tuple(ind.fitness) for ind in chosen}
        assert fits == {(0.0, 3.0), (1.0, 2.0), (2.0, 1.0)}

    def test_nsga2_select_ties_break_by_crowding(self):
        # one big front; selection should keep the extremes
        F = [[0.0, 1.0], [0.01, 0.99], [0.02, 0.98], [1.0, 0.0]]
        pop = self._evaluated(F)
        chosen = nsga2_select(pop, size=2)
        fits = {tuple(np.round(ind.fitness, 3)) for ind in chosen}
        assert (0.0, 1.0) in fits and (1.0, 0.0) in fits


class TestAnnealing:
    def test_fixed_schedule_decays(self):
        sched = AnnealingSchedule(np.array([1.0, 2.0]), factor=0.85)
        sched.step()
        assert np.allclose(sched.current, [0.85, 1.7])

    def test_reset_restores_initial(self):
        sched = AnnealingSchedule(np.array([1.0]), factor=0.5)
        sched.step()
        sched.reset()
        assert np.allclose(sched.current, [1.0])

    def test_min_std_floor(self):
        sched = AnnealingSchedule(
            np.array([1.0]), factor=0.1, min_std=0.5
        )
        sched.step()
        sched.step()
        assert np.allclose(sched.current, [0.5])

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(np.array([1.0]), factor=0.0)

    def test_paper_schedule_after_six_generations(self):
        sched = AnnealingSchedule(np.array([0.0625]), factor=0.85)
        for _ in range(6):
            sched.step()
        assert np.isclose(sched.current[0], 0.0625 * 0.85**6)

    def test_context_shared_with_mutation(self):
        ctx = Context()
        sched = AnnealingSchedule(np.array([1.0]), context=ctx)
        assert "std" in ctx
        sched.step()
        assert np.allclose(ctx["std"], [0.85])

    def test_one_fifth_rule_grows_on_success(self):
        rule = OneFifthSuccessRule(np.array([1.0]), factor=0.85)
        rule.step(success_rate=0.5)
        assert rule.current[0] > 1.0

    def test_one_fifth_rule_shrinks_on_failure(self):
        rule = OneFifthSuccessRule(np.array([1.0]), factor=0.85)
        rule.step(success_rate=0.05)
        assert rule.current[0] < 1.0

    def test_one_fifth_rule_holds_at_target(self):
        rule = OneFifthSuccessRule(np.array([1.0]), target_rate=0.2)
        rule.step(success_rate=0.2)
        assert np.allclose(rule.current, [1.0])

    def test_one_fifth_rule_without_rate_decays(self):
        rule = OneFifthSuccessRule(np.array([1.0]), factor=0.85)
        rule.step()
        assert np.isclose(rule.current[0], 0.85)


class _SphereTwoObjectives(FunctionProblem):
    """min (||x||^2, ||x - 1||^2): a simple convex biobjective."""

    def __init__(self):
        super().__init__(
            lambda x: np.array(
                [float(np.sum(x**2)), float(np.sum((x - 1.0) ** 2))]
            ),
            n_objectives=2,
        )


class TestGenerationalNSGA2:
    def _run(self, generations=5, pop=16, **kwargs):
        n = 3
        return generational_nsga2(
            problem=_SphereTwoObjectives(),
            init_ranges=np.tile([-2.0, 2.0], (n, 1)),
            initial_std=np.full(n, 0.3),
            pop_size=pop,
            generations=generations,
            hard_bounds=np.tile([-2.0, 2.0], (n, 1)),
            rng=0,
            **kwargs,
        )

    def test_record_count_includes_generation_zero(self):
        records = self._run(generations=5)
        assert len(records) == 6
        assert records[0].generation == 0

    def test_population_size_constant(self):
        records = self._run()
        assert all(len(r.population) == 16 for r in records)

    def test_all_evaluated(self):
        records = self._run()
        for rec in records:
            assert all(ind.is_evaluated for ind in rec.evaluated)

    def test_std_annealed_between_generations(self):
        records = self._run(generations=3)
        stds = [r.std[0] for r in records]
        assert np.isclose(stds[1], stds[0] * 0.85)
        assert np.isclose(stds[2], stds[1] * 0.85)

    def test_progress_toward_front(self):
        records = self._run(generations=20)
        first = records[0].fitness_matrix()
        last = records[-1].fitness_matrix()
        # total deviation from the ideal point shrinks
        assert last.sum(axis=1).mean() < first.sum(axis=1).mean()

    def test_callback_invoked_per_generation(self):
        seen = []
        self._run(generations=4, callback=lambda rec: seen.append(rec.generation))
        assert seen == [0, 1, 2, 3, 4]

    def test_failures_counted(self):
        class SometimesFails(FunctionProblem):
            def __init__(self):
                self.count = 0
                super().__init__(self._eval, n_objectives=2)

            def _eval(self, x):
                self.count += 1
                if self.count % 3 == 0:
                    raise RuntimeError("boom")
                return np.array([1.0, 1.0])

        records = generational_nsga2(
            problem=SometimesFails(),
            init_ranges=np.array([[0.0, 1.0]]),
            initial_std=np.array([0.1]),
            pop_size=9,
            generations=1,
            rng=0,
        )
        assert records[0].n_failures == 3

    def test_invalid_init_ranges(self):
        with pytest.raises(ValueError):
            random_initial_population(
                4, np.array([1.0, 2.0]), _SphereTwoObjectives()
            )

    def test_selection_is_elitist(self):
        """mu+lambda: a parent on the first front survives mutation noise."""
        records = self._run(generations=8)
        for prev, curr in zip(records, records[1:]):
            prev_best = prev.fitness_matrix().sum(axis=1).min()
            curr_best = curr.fitness_matrix().sum(axis=1).min()
            # scalarized best never gets dramatically worse (elitism keeps
            # non-dominated parents; small wobble possible as the front
            # spreads, none beyond noise)
            assert curr_best <= prev_best + 0.3

    def test_distributed_client_evaluation(self):
        from repro.distributed import LocalCluster

        with LocalCluster(n_workers=3) as cluster:
            records = self._run(
                generations=2, client=cluster.client()
            )
        assert all(ind.is_evaluated for ind in records[-1].population)


class TestVectorizedKernelEquivalence:
    """The vectorized NSGA-II kernels are pinned bit-for-bit to the
    scalar reference oracle — including duplicate rows and MAXINT
    failure fitnesses, the two inputs a real campaign produces that
    random clouds rarely do."""

    @staticmethod
    def _assert_bit_identical(F):
        from repro.evo import nsga2

        rs = nsga2.rank_ordinal_sort(F, impl="scalar")
        rv = nsga2.rank_ordinal_sort(F, impl="vectorized")
        assert np.array_equal(rs, rv)
        if len(F):
            # fast sort is the second oracle for the ranks themselves
            assert np.array_equal(rs, fast_nondominated_sort(F))
            ds = nsga2.crowding_distance(F, rs, impl="scalar")
            dv = nsga2.crowding_distance(F, rs, impl="vectorized")
            # view as bits: inf==inf and every float is the same float
            assert np.array_equal(
                ds.view(np.uint64), dv.view(np.uint64)
            )

    @given(
        st.lists(
            st.tuples(
                st.floats(-1e6, 1e6, allow_nan=False),
                st.floats(-1e6, 1e6, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        ),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_two_objective_random_fronts(self, rows, data):
        F = np.asarray(rows, dtype=np.float64).reshape(len(rows), 2)
        n = len(F)
        if n >= 2:
            # duplicate some rows and fail some individuals at MAXINT
            n_dup = data.draw(st.integers(0, n // 2))
            for _ in range(n_dup):
                src = data.draw(st.integers(0, n - 1))
                dst = data.draw(st.integers(0, n - 1))
                F[dst] = F[src]
            n_fail = data.draw(st.integers(0, n // 2))
            for _ in range(n_fail):
                F[data.draw(st.integers(0, n - 1))] = float(MAXINT)
        self._assert_bit_identical(F)

    @given(
        st.integers(1, 25),
        st.integers(3, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_many_objective_crowding(self, n, m, seed):
        """3+ objectives share one sort path, but crowding still has
        two implementations to pin together."""
        from repro.evo import nsga2

        rng = np.random.default_rng(seed)
        F = rng.normal(size=(n, m))
        if n >= 3:
            F[0] = F[n - 1]  # at least one exact duplicate
            F[1] = float(MAXINT)
        ranks = nsga2.rank_ordinal_sort(F)
        ds = nsga2.crowding_distance(F, ranks, impl="scalar")
        dv = nsga2.crowding_distance(F, ranks, impl="vectorized")
        assert np.array_equal(ds.view(np.uint64), dv.view(np.uint64))

    def test_all_identical_rows(self):
        self._assert_bit_identical(np.zeros((9, 2)))

    def test_all_maxint(self):
        self._assert_bit_identical(np.full((5, 2), float(MAXINT)))

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="impl"):
            rank_ordinal_sort(np.zeros((2, 2)), impl="simd")
        with pytest.raises(ValueError, match="impl"):
            crowding_distance(
                np.zeros((2, 2)), np.ones(2, dtype=int), impl="gpu"
            )

"""Unit tests for the Tensor core: construction, backward, grad API."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff.tensor import Tensor, grad, no_grad, is_grad_enabled


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_construction_from_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_construction_copies_tensor_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_leaf_detection(self):
        a = Tensor([1.0], requires_grad=True)
        b = a + 1.0
        assert a.is_leaf
        assert not b.is_leaf

    def test_detach_shares_data_but_drops_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert b.is_leaf
        assert not b.requires_grad

    def test_numpy_returns_reference(self):
        a = Tensor([1.0, 2.0])
        a.numpy()[0] = 5.0
        assert a.data[0] == 5.0

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestBackward:
    def test_simple_square(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_with_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(gradient=np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_backward_seed_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        with pytest.raises(ValueError, match="shape"):
            y.backward(gradient=np.array([1.0, 2.0, 3.0]))

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x should give 4x
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        y = (a + a).sum()
        y.backward()
        assert np.allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        s = x * 3.0
        y = (s * s).sum()  # 9x^2 -> 18x
        y.backward()
        assert np.allclose(x.grad, [36.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_no_grad_through_constant(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])  # constant
        y = (x * c).sum()
        y.backward()
        assert c.grad is None
        assert np.allclose(x.grad, [2.0])


class TestGradAPI:
    def test_grad_returns_without_mutating(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x**2.0).sum()
        (g,) = grad(y, [x])
        assert np.allclose(g.data, [2.0, 4.0])
        assert x.grad is None

    def test_grad_unused_input_raises(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).sum()
        with pytest.raises(ValueError, match="not part of the graph"):
            grad(y, [z])

    def test_grad_allow_unused_returns_zeros(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2.0).sum()
        gx, gz = grad(y, [x, z], allow_unused=True)
        assert np.allclose(gz.data, [0.0, 0.0])

    def test_grad_multiple_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        y = (a * b).sum()
        ga, gb = grad(y, [a, b])
        assert np.allclose(ga.data, [2.0])
        assert np.allclose(gb.data, [1.0])


class TestNoGrad:
    def test_no_grad_disables_taping(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
            y = x * 2.0
        assert y.is_leaf

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()


class TestDoubleBackward:
    def test_grad_of_grad_cubic(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x**3.0).sum()
        (g,) = grad(y, [x], create_graph=True)  # 3x^2
        z = (g * g).sum()  # 9x^4
        z.backward()  # 36x^3
        assert np.allclose(x.grad, 36.0 * np.array([1.0, 8.0]))

    def test_second_derivative_of_tanh(self):
        x0 = 0.3
        x = Tensor([x0], requires_grad=True)
        y = ad.tanh(x).sum()
        (g,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g.sum(), [x])
        t = np.tanh(x0)
        expected = -2.0 * t * (1.0 - t**2)
        assert np.allclose(g2.data, [expected])

    def test_grad_without_create_graph_is_constant(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x**2.0).sum()
        (g,) = grad(y, [x], create_graph=False)
        assert g.is_leaf

    def test_mixed_partial(self):
        # f = a^2 * b -> df/da = 2ab, d2f/dadb = 2a
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        f = (a * a * b).sum()
        (ga,) = grad(f, [a], create_graph=True)
        (gab,) = grad(ga.sum(), [b])
        assert np.allclose(gab.data, [6.0])

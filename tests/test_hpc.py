"""Tests for the Summit-like cluster model: nodes, runtime model,
batch jobs, jsrun launcher, and the discrete-event campaign simulation."""

import numpy as np
import pytest

from repro.exceptions import WalltimeExceeded
from repro.hpc import (
    BatchJob,
    ClusterSimulation,
    JsrunLauncher,
    NodeState,
    SummitNode,
    TrainingRuntimeModel,
)


class TestSummitNode:
    def test_paper_hardware_shape(self):
        node = SummitNode("n0")
        assert node.n_gpus == 6
        assert node.n_cores == 42

    def test_assign_release_cycle(self):
        node = SummitNode("n0")
        node.assign(until=10.0)
        assert node.state is NodeState.BUSY
        node.release()
        assert node.state is NodeState.IDLE
        assert node.tasks_completed == 1

    def test_double_assign_rejected(self):
        node = SummitNode("n0")
        node.assign(until=10.0)
        with pytest.raises(RuntimeError):
            node.assign(until=20.0)

    def test_fail_and_recover(self):
        node = SummitNode("n0")
        node.fail()
        assert node.state is NodeState.FAILED
        assert not node.available
        node.recover()
        assert node.available


class TestRuntimeModel:
    def test_rcut_cubic_growth(self):
        model = TrainingRuntimeModel(rng=0)
        t6 = model.mean_runtime_minutes(6.0)
        t12 = model.mean_runtime_minutes(12.0)
        env = model.env_minutes
        assert np.isclose(t12 - model.fixed_minutes, env * 8.0)
        assert t12 > t6

    def test_paper_envelope(self):
        """All runtimes stay under the 2-hour cap and top out near the
        paper's observed ~80 minutes at rcut=12."""
        model = TrainingRuntimeModel(rng=0)
        times = [model.runtime_minutes(12.0) for _ in range(200)]
        assert max(times) < 120.0
        assert 60.0 < np.mean(times) < 85.0

    def test_cpu_speedup_factor(self):
        model = TrainingRuntimeModel(rng=0)
        assert np.isclose(
            model.mean_runtime_minutes(6.0, gpu=False)
            / model.mean_runtime_minutes(6.0, gpu=True),
            65.0,
        )

    def test_failed_runs_are_short(self):
        model = TrainingRuntimeModel(rng=0)
        times = [
            model.runtime_minutes(12.0, failed=True) for _ in range(50)
        ]
        assert max(times) <= 4.0

    def test_jitter_randomizes(self):
        model = TrainingRuntimeModel(rng=0)
        times = {model.runtime_minutes(8.0) for _ in range(10)}
        assert len(times) == 10


class TestBatchJob:
    def test_default_paper_allocation(self):
        job = BatchJob()
        assert job.n_nodes == 100
        assert job.walltime_minutes == 720.0

    def test_walltime_check(self):
        job = BatchJob(n_nodes=2, walltime_minutes=60.0)
        job.check_walltime(59.0)
        with pytest.raises(WalltimeExceeded):
            job.check_walltime(61.0)

    def test_available_nodes_tracking(self):
        job = BatchJob(n_nodes=3)
        job.nodes[0].assign(until=5.0)
        job.nodes[1].fail()
        assert len(job.available_nodes()) == 1
        assert len(job.healthy_nodes()) == 2

    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            BatchJob(n_nodes=0)


class TestJsrunLauncher:
    def test_launch_acquires_node(self):
        job = BatchJob(n_nodes=2, walltime_minutes=100.0)
        launcher = JsrunLauncher(job)
        node = launcher.launch(runtime_minutes=10.0, now_minutes=0.0)
        assert node is not None
        assert node.state is NodeState.BUSY
        assert launcher.launches == 1

    def test_launch_returns_none_when_full(self):
        job = BatchJob(n_nodes=1, walltime_minutes=100.0)
        launcher = JsrunLauncher(job)
        launcher.launch(10.0, 0.0)
        assert launcher.launch(10.0, 0.0) is None

    def test_launch_respects_walltime(self):
        job = BatchJob(n_nodes=1, walltime_minutes=10.0)
        launcher = JsrunLauncher(job)
        with pytest.raises(WalltimeExceeded):
            launcher.launch(5.0, now_minutes=20.0)

    def test_complete_frees_node(self):
        job = BatchJob(n_nodes=1, walltime_minutes=100.0)
        launcher = JsrunLauncher(job)
        node = launcher.launch(10.0, 0.0)
        launcher.complete(node)
        assert launcher.launch(10.0, 15.0) is not None


class TestClusterSimulation:
    def _workloads(self, generations=7, per_gen=100, minutes=50.0):
        return [[minutes] * per_gen for _ in range(generations)]

    def test_paper_campaign_fits_walltime(self):
        """7 generations x 100 evals of <=80-minute trainings on 100
        nodes must fit the 12-hour allocation (the paper's envelope)."""
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=100, walltime_minutes=720.0), rng=0
        )
        report = sim.run_campaign(self._workloads(minutes=78.0))
        assert not report.walltime_exceeded
        assert report.evaluations_completed == 700
        assert report.total_minutes <= 720.0

    def test_generational_barrier(self):
        """With pop == nodes, each generation's makespan equals its
        longest task; generations run back to back."""
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=10, walltime_minutes=10000.0), rng=0
        )
        workloads = [[5.0] * 10, [7.0] * 10]
        report = sim.run_campaign(workloads)
        assert np.isclose(report.generations[0].makespan_minutes, 5.0)
        assert np.isclose(report.generations[1].makespan_minutes, 7.0)
        assert np.isclose(report.total_minutes, 12.0)

    def test_fewer_nodes_than_tasks_queues(self):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=2, walltime_minutes=10000.0), rng=0
        )
        report = sim.run_campaign([[10.0] * 4])
        assert np.isclose(report.generations[0].makespan_minutes, 20.0)

    def test_walltime_exceeded_flagged(self):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=1, walltime_minutes=15.0), rng=0
        )
        report = sim.run_campaign([[10.0] * 3])
        assert report.walltime_exceeded

    def test_node_failures_requeue_tasks(self):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=20, walltime_minutes=100000.0),
            node_mtbf_minutes=200.0,
            max_retries=10,
            rng=3,
        )
        report = sim.run_campaign([[30.0] * 20] * 3)
        assert report.node_failures > 0
        assert (
            report.evaluations_completed
            + report.evaluations_abandoned
            == 60
        )

    def test_failures_cost_time(self):
        workloads = [[30.0] * 20] * 3
        healthy = ClusterSimulation(
            job=BatchJob(n_nodes=20, walltime_minutes=1e6), rng=5
        ).run_campaign(workloads)
        faulty = ClusterSimulation(
            job=BatchJob(n_nodes=20, walltime_minutes=1e6),
            node_mtbf_minutes=150.0,
            max_retries=10,
            rng=5,
        ).run_campaign(workloads)
        assert faulty.total_minutes > healthy.total_minutes

    def test_nannies_recover_transient_nodes(self):
        kwargs = dict(
            node_mtbf_minutes=120.0,
            max_retries=10,
            rng=11,
        )
        no_nanny = ClusterSimulation(
            job=BatchJob(n_nodes=10, walltime_minutes=1e6),
            nannies=False,
            **kwargs,
        ).run_campaign([[30.0] * 10] * 5)
        with_nanny = ClusterSimulation(
            job=BatchJob(n_nodes=10, walltime_minutes=1e6),
            nannies=True,
            transient_fraction=1.0,
            **kwargs,
        ).run_campaign([[30.0] * 10] * 5)
        assert with_nanny.nodes_lost <= no_nanny.nodes_lost

    def test_summary_keys(self):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=2, walltime_minutes=1e4), rng=0
        )
        report = sim.run_campaign([[1.0, 2.0]])
        summary = report.summary()
        for key in (
            "generations",
            "total_hours",
            "evaluations_completed",
            "node_failures",
        ):
            assert key in summary

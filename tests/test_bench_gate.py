"""Unit tests for the benchmark regression gate (benchmarks/runner.py).

The gate's comparison logic is pure and cheap, so it is pinned here in
tier-1 — a broken gate would otherwise only reveal itself by silently
passing regressions in CI.
"""

import json

from benchmarks.runner import BASELINES_PATH, check_metrics


class TestCheckMetrics:
    BASE = {
        "speedup": {"value": 4.0, "direction": "higher", "tolerance": 0.25},
        "latency": {"value": 10.0, "direction": "lower", "tolerance": 0.25},
    }

    def test_within_tolerance_passes(self):
        assert check_metrics({"speedup": 3.2, "latency": 12.0}, self.BASE) == []

    def test_improvement_passes(self):
        assert check_metrics({"speedup": 9.0, "latency": 1.0}, self.BASE) == []

    def test_higher_metric_regression_fails(self):
        failures = check_metrics({"speedup": 2.9, "latency": 10.0}, self.BASE)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_lower_metric_regression_fails(self):
        failures = check_metrics({"speedup": 4.0, "latency": 12.6}, self.BASE)
        assert len(failures) == 1
        assert "latency" in failures[0]

    def test_missing_measurement_fails_loudly(self):
        """A renamed metric must not silently disable its gate."""
        failures = check_metrics({"speedup": 4.0}, self.BASE)
        assert any("not measured" in f for f in failures)

    def test_extra_measurements_are_informational(self):
        measured = {"speedup": 4.0, "latency": 10.0, "new_metric": 0.1}
        assert check_metrics(measured, self.BASE) == []

    def test_default_tolerance_is_25_percent(self):
        base = {"m": {"value": 100.0, "direction": "higher"}}
        assert check_metrics({"m": 75.0}, base) == []
        assert len(check_metrics({"m": 74.9}, base)) == 1


class TestCommittedBaselines:
    def test_baselines_file_is_well_formed(self):
        doc = json.loads(BASELINES_PATH.read_text())
        assert doc, "baselines.json must not be empty"
        for name, spec in doc.items():
            assert spec["direction"] in ("higher", "lower"), name
            assert float(spec["value"]) > 0, name
            assert 0 < float(spec["tolerance"]) < 1, name

    def test_gated_metrics_cover_pool_and_kernels(self):
        doc = json.loads(BASELINES_PATH.read_text())
        assert "pool4_speedup_vs_inline" in doc
        assert "sort_speedup_vectorized" in doc
        assert "crowding_speedup_vectorized" in doc

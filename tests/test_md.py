"""Tests for the MD substrate: cells, neighbor lists, potentials,
integrators, and dataset generation."""

import numpy as np
import pytest

from repro.md.cell import PeriodicCell
from repro.md.dataset import Frame, FrameDataset, Trajectory, generate_dataset
from repro.md.integrator import (
    EV_A_AMU,
    KB_EV,
    LangevinIntegrator,
    VelocityVerlet,
    instantaneous_temperature,
    kinetic_energy,
    maxwell_boltzmann_velocities,
)
from repro.md.neighbors import NeighborList, neighbor_pairs
from repro.md.potentials import (
    BornMayerHuggins,
    CompositePotential,
    DSFCoulomb,
    LennardJones,
)
from repro.md.system import (
    AtomicSystem,
    molten_salt_composition,
    molten_salt_potential,
    molten_salt_system,
)


class TestPeriodicCell:
    def test_cubic_from_scalar(self):
        cell = PeriodicCell(10.0)
        assert np.allclose(cell.lengths, [10.0, 10.0, 10.0])
        assert cell.is_cubic

    def test_orthorhombic(self):
        cell = PeriodicCell([5.0, 10.0, 15.0])
        assert not cell.is_cubic
        assert cell.volume == 750.0

    def test_invalid_lengths_raise(self):
        with pytest.raises(ValueError):
            PeriodicCell([1.0, 2.0])
        with pytest.raises(ValueError):
            PeriodicCell(-1.0)

    def test_wrap(self):
        cell = PeriodicCell(10.0)
        wrapped = cell.wrap(np.array([[11.0, -1.0, 5.0]]))
        assert np.allclose(wrapped, [[1.0, 9.0, 5.0]])

    def test_minimum_image(self):
        cell = PeriodicCell(10.0)
        d = cell.minimum_image(np.array([9.0, -9.0, 4.0]))
        assert np.allclose(d, [-1.0, 1.0, 4.0])

    def test_distance_through_boundary(self):
        cell = PeriodicCell(10.0)
        d = cell.distance(np.array([0.5, 0.0, 0.0]), np.array([9.5, 0.0, 0.0]))
        assert np.isclose(d, 1.0)

    def test_max_cutoff(self):
        assert PeriodicCell([8.0, 10.0, 12.0]).max_cutoff() == 4.0

    def test_image_shifts_small_cutoff(self):
        cell = PeriodicCell(10.0)
        shifts = cell.image_shifts(4.0)
        assert len(shifts) == 27  # one shell

    def test_image_shifts_large_cutoff(self):
        cell = PeriodicCell(10.0)
        shifts = cell.image_shifts(12.0)
        assert len(shifts) == 125  # two shells


class TestNeighborPairs:
    def test_simple_pair(self):
        cell = PeriodicCell(10.0)
        pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
        i, j, d = neighbor_pairs(pos, cell, cutoff=2.0)
        assert len(i) == 1
        assert np.isclose(np.linalg.norm(d[0]), 1.5)

    def test_pair_through_boundary(self):
        cell = PeriodicCell(10.0)
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        i, j, d = neighbor_pairs(pos, cell, cutoff=2.0)
        assert len(i) == 1
        assert np.isclose(np.linalg.norm(d[0]), 1.0)

    def test_no_pairs_beyond_cutoff(self):
        cell = PeriodicCell(10.0)
        pos = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        i, j, d = neighbor_pairs(pos, cell, cutoff=2.0)
        assert len(i) == 0

    def test_cutoff_beyond_half_box_finds_images(self):
        cell = PeriodicCell(4.0)
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        # with cutoff 6 the pair appears multiple times through images,
        # and each atom also sees its own periodic images
        i, j, d = neighbor_pairs(pos, cell, cutoff=6.0)
        dists = np.linalg.norm(d, axis=1)
        assert np.all(dists <= 6.0)
        assert np.any(i == j)  # self-image pairs exist
        # direct pair at distance 2 present
        cross = dists[(i != j)]
        assert np.isclose(cross.min(), 2.0)

    def test_each_unordered_pair_once(self):
        cell = PeriodicCell(20.0)
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 20, size=(12, 3))
        i, j, d = neighbor_pairs(pos, cell, cutoff=6.0)
        seen = set()
        for a, b in zip(i, j):
            key = (min(a, b), max(a, b))
            assert key not in seen
            seen.add(key)


class TestNeighborList:
    def test_counts_match_pairs(self):
        cell = PeriodicCell(12.0)
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 12, size=(10, 3))
        nl = NeighborList.build(pos, cell, cutoff=4.0)
        i, j, d = neighbor_pairs(pos, cell, cutoff=4.0)
        assert nl.neighbor_counts().sum() == 2 * len(i)

    def test_displacement_distances_within_cutoff(self):
        cell = PeriodicCell(12.0)
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 12, size=(10, 3))
        nl = NeighborList.build(pos, cell, cutoff=4.0)
        r = np.linalg.norm(nl.displacements, axis=-1)
        assert np.all(r[nl.mask.astype(bool)] <= 4.0)

    def test_fixed_width_padding(self):
        cell = PeriodicCell(12.0)
        pos = np.random.default_rng(3).uniform(0, 12, size=(8, 3))
        nl = NeighborList.build(pos, cell, cutoff=4.0, max_neighbors=30)
        assert nl.max_neighbors == 30

    def test_fixed_width_too_small_raises(self):
        cell = PeriodicCell(6.0)
        pos = np.random.default_rng(4).uniform(0, 6, size=(10, 3))
        with pytest.raises(ValueError, match="max_neighbors"):
            NeighborList.build(pos, cell, cutoff=5.0, max_neighbors=1)

    def test_neighbors_sorted_by_distance(self):
        cell = PeriodicCell(20.0)
        pos = np.array(
            [[0.0, 0.0, 0.0], [3.0, 0.0, 0.0], [1.0, 0.0, 0.0]]
        )
        nl = NeighborList.build(pos, cell, cutoff=5.0)
        r0 = np.linalg.norm(nl.displacements[0], axis=-1)
        valid = nl.mask[0].astype(bool)
        assert np.all(np.diff(r0[valid]) >= 0)


class TestLennardJones:
    def test_minimum_at_sigma_2_1_6(self):
        lj = LennardJones(epsilon=0.01, sigma=3.0, cutoff=9.0)
        r_min = 3.0 * 2 ** (1.0 / 6.0)
        u_min, f_min = lj.pair_energy_and_scalar_force(
            np.array([r_min]), np.array([0]), np.array([0])
        )
        assert abs(f_min[0]) < 1e-10

    def test_energy_shifted_to_zero_at_cutoff(self):
        lj = LennardJones(cutoff=9.0)
        u, _ = lj.pair_energy_and_scalar_force(
            np.array([9.0]), np.array([0]), np.array([0])
        )
        assert np.isclose(u[0], 0.0)

    def test_forces_are_negative_gradient(self):
        lj = LennardJones()
        cell = PeriodicCell(20.0)
        pos = np.array([[5.0, 5.0, 5.0], [8.4, 5.0, 5.0]])
        species = np.zeros(2, dtype=int)
        _, forces = lj.energy_and_forces(pos, species, cell)
        eps = 1e-6
        for k in range(3):
            p = pos.copy()
            p[0, k] += eps
            ep, _ = lj.energy_and_forces(p, species, cell)
            p[0, k] -= 2 * eps
            em, _ = lj.energy_and_forces(p, species, cell)
            assert np.isclose(forces[0, k], -(ep - em) / (2 * eps), atol=1e-5)

    def test_newton_third_law(self):
        lj = LennardJones()
        cell = PeriodicCell(20.0)
        pos = np.random.default_rng(5).uniform(4, 16, size=(6, 3))
        _, forces = lj.energy_and_forces(pos, np.zeros(6, dtype=int), cell)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-12)


class TestBornMayerHuggins:
    def _bmh(self):
        A = np.full((2, 2), 1000.0)
        rho = np.full((2, 2), 0.3)
        C = np.full((2, 2), 10.0)
        return BornMayerHuggins(A=A, rho=rho, C=C, cutoff=6.0)

    def test_repulsive_at_short_range(self):
        bmh = self._bmh()
        u, f = bmh.pair_energy_and_scalar_force(
            np.array([1.0]), np.array([0]), np.array([1])
        )
        assert f[0] > 0.0  # pushes apart

    def test_shift_zeroes_cutoff_energy(self):
        bmh = self._bmh()
        u, _ = bmh.pair_energy_and_scalar_force(
            np.array([6.0]), np.array([0]), np.array([0])
        )
        assert np.isclose(u[0], 0.0)

    def test_asymmetric_tables_rejected(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        sym = np.full((2, 2), 1.0)
        with pytest.raises(ValueError, match="symmetric"):
            BornMayerHuggins(A=A, rho=sym, C=sym)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BornMayerHuggins(
                A=np.ones((2, 2)), rho=np.ones((3, 3)), C=np.ones((2, 2))
            )


class TestDSFCoulomb:
    def test_force_zero_at_cutoff(self):
        pot = DSFCoulomb([1.0, -1.0], alpha=0.2, cutoff=8.0)
        _, f = pot.pair_energy_and_scalar_force(
            np.array([8.0]), np.array([0]), np.array([1])
        )
        assert np.isclose(f[0], 0.0, atol=1e-12)

    def test_energy_zero_at_cutoff(self):
        pot = DSFCoulomb([1.0, -1.0], alpha=0.2, cutoff=8.0)
        u, _ = pot.pair_energy_and_scalar_force(
            np.array([8.0]), np.array([0]), np.array([1])
        )
        assert np.isclose(u[0], 0.0, atol=1e-12)

    def test_opposite_charges_attract(self):
        pot = DSFCoulomb([1.0, -1.0], alpha=0.2, cutoff=8.0)
        _, f = pot.pair_energy_and_scalar_force(
            np.array([3.0]), np.array([0]), np.array([1])
        )
        assert f[0] < 0.0  # attractive: pulls together

    def test_like_charges_repel(self):
        pot = DSFCoulomb([1.0, -1.0], alpha=0.2, cutoff=8.0)
        _, f = pot.pair_energy_and_scalar_force(
            np.array([3.0]), np.array([0]), np.array([0])
        )
        assert f[0] > 0.0

    def test_force_consistency_finite_difference(self):
        pot = DSFCoulomb([2.0, -1.0], alpha=0.25, cutoff=7.0)
        r = np.array([3.7])
        si, sj = np.array([0]), np.array([1])
        u0, f0 = pot.pair_energy_and_scalar_force(r, si, sj)
        eps = 1e-6
        up, _ = pot.pair_energy_and_scalar_force(r + eps, si, sj)
        um, _ = pot.pair_energy_and_scalar_force(r - eps, si, sj)
        assert np.isclose(f0[0], -(up[0] - um[0]) / (2 * eps), rtol=1e-5)


class TestCompositePotential:
    def test_sums_terms(self):
        lj1 = LennardJones(epsilon=0.01)
        lj2 = LennardJones(epsilon=0.02)
        comp = CompositePotential([lj1, lj2])
        r = np.array([3.5])
        s = np.array([0])
        u1, f1 = lj1.pair_energy_and_scalar_force(r, s, s)
        u2, f2 = lj2.pair_energy_and_scalar_force(r, s, s)
        uc, fc = comp.pair_energy_and_scalar_force(r, s, s)
        assert np.isclose(uc[0], u1[0] + u2[0])
        assert np.isclose(fc[0], f1[0] + f2[0])

    def test_cutoff_is_max(self):
        comp = CompositePotential(
            [LennardJones(cutoff=5.0), LennardJones(cutoff=9.0)]
        )
        assert comp.cutoff == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositePotential([])

    def test_respects_member_cutoffs(self):
        comp = CompositePotential(
            [LennardJones(cutoff=4.0), LennardJones(cutoff=8.0)]
        )
        # at r=6 only the second term contributes
        u, _ = comp.pair_energy_and_scalar_force(
            np.array([6.0]), np.array([0]), np.array([0])
        )
        u2, _ = LennardJones(cutoff=8.0).pair_energy_and_scalar_force(
            np.array([6.0]), np.array([0]), np.array([0])
        )
        assert np.isclose(u[0], u2[0])


class TestMoltenSaltSystem:
    def test_paper_composition_160_atoms(self):
        species = molten_salt_composition(32, 16)
        assert len(species) == 160
        counts = np.bincount(species)
        assert counts[0] == 32  # Al
        assert counts[1] == 16  # K
        assert counts[2] == 112  # Cl

    def test_charge_neutrality(self):
        from repro.md.system import ALCL3_KCL_CHARGES, SPECIES

        species = molten_salt_composition(4, 2)
        q = sum(ALCL3_KCL_CHARGES[SPECIES[s]] for s in species)
        assert q == 0.0

    def test_paper_box_size(self):
        system = molten_salt_system(32, 16, rng=0)
        assert np.isclose(system.cell.lengths[0], 17.84, atol=0.01)

    def test_scaled_system_preserves_density(self):
        small = molten_salt_system(4, 2, rng=0)
        big = molten_salt_system(32, 16, rng=0)
        assert np.isclose(
            small.cell.volume / small.n_atoms,
            big.cell.volume / big.n_atoms,
        )

    def test_min_separation_respected(self):
        system = molten_salt_system(4, 2, rng=0, min_separation=2.0)
        i, j, d = neighbor_pairs(
            system.positions, system.cell, cutoff=2.0
        )
        assert len(i) == 0

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            molten_salt_composition(0, 0)


class TestIntegrators:
    def test_maxwell_boltzmann_temperature(self):
        masses = np.full(500, 30.0)
        v = maxwell_boltzmann_velocities(masses, 500.0, rng=0)
        T = instantaneous_temperature(masses, v)
        assert abs(T - 500.0) / 500.0 < 0.15

    def test_maxwell_boltzmann_zero_com(self):
        masses = np.array([10.0, 20.0, 30.0])
        v = maxwell_boltzmann_velocities(masses, 300.0, rng=1)
        p = (masses[:, None] * v).sum(axis=0)
        assert np.allclose(p, 0.0, atol=1e-12)

    def test_kinetic_energy_units(self):
        # KE of one particle: 0.5 m v^2 / conversion
        masses = np.array([10.0])
        v = np.array([[0.01, 0.0, 0.0]])
        ke = kinetic_energy(masses, v)
        assert np.isclose(ke, 0.5 * 10.0 * 1e-4 / EV_A_AMU)

    def test_nve_energy_conservation(self):
        system = molten_salt_system(4, 2, rng=10)
        cutoff = 0.99 * system.cell.max_cutoff()
        pot = molten_salt_potential(cutoff=cutoff)
        # brief thermalization
        lang = LangevinIntegrator(pot, 498.0, dt=1.0, rng=11)
        v = maxwell_boltzmann_velocities(system.masses, 498.0, rng=12)
        _, v = lang.run(system, v, 200)
        vv = VelocityVerlet(pot, dt=0.5)
        totals = []

        def cb(step, pos, vel, e, f):
            totals.append(e + kinetic_energy(system.masses, vel))

        vv.run(system, v, 200, callback=cb)
        totals = np.array(totals)
        drift = (totals.max() - totals.min()) / abs(totals.mean())
        assert drift < 1e-3

    def test_langevin_reaches_target_temperature(self):
        system = molten_salt_system(4, 2, rng=20)
        cutoff = 0.99 * system.cell.max_cutoff()
        pot = molten_salt_potential(cutoff=cutoff)
        lang = LangevinIntegrator(pot, 498.0, friction=0.05, dt=1.0, rng=21)
        v = maxwell_boltzmann_velocities(system.masses, 100.0, rng=22)
        temps = []

        def cb(step, pos, vel, e, f):
            if step > 400:
                temps.append(
                    instantaneous_temperature(system.masses, vel)
                )

        lang.run(system, v, 800, callback=cb)
        mean_T = np.mean(temps)
        # small system: generous tolerance around the target
        assert 300.0 < mean_T < 750.0


class TestFrameDataset:
    def _frames(self, n=8):
        rng = np.random.default_rng(0)
        species = np.array([0, 1, 2, 2])
        return [
            Frame(
                positions=rng.uniform(0, 5, size=(4, 3)),
                species=species,
                energy=float(rng.normal()),
                forces=rng.normal(size=(4, 3)),
                box=np.full(3, 5.0),
            )
            for _ in range(n)
        ]

    def test_split_fractions(self):
        ds = FrameDataset(self._frames(8), validation_fraction=0.25, rng=0)
        assert len(ds.validation) == 2
        assert len(ds.train) == 6

    def test_split_is_shuffled_partition(self):
        frames = self._frames(8)
        ds = FrameDataset(frames, validation_fraction=0.25, rng=0)
        all_ids = {id(f) for f in ds.train} | {id(f) for f in ds.validation}
        assert all_ids == {id(f) for f in frames}

    def test_arrays_shapes(self):
        ds = FrameDataset(self._frames(8), rng=0)
        arr = ds.arrays("train")
        assert arr["coord"].shape == (6, 4, 3)
        assert arr["energy"].shape == (6,)
        assert arr["force"].shape == (6, 4, 3)
        assert arr["box"].shape == (6, 3)

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError):
            FrameDataset([])

    def test_mismatched_atom_counts_rejected(self):
        frames = self._frames(2)
        bad = Frame(
            positions=np.zeros((5, 3)),
            species=np.zeros(5, dtype=int),
            energy=0.0,
            forces=np.zeros((5, 3)),
            box=np.full(3, 5.0),
        )
        with pytest.raises(ValueError, match="same atom count"):
            FrameDataset(frames + [bad])

    def test_save_load_roundtrip(self, tmp_path):
        ds = FrameDataset(self._frames(8), rng=0)
        ds.save(tmp_path / "data")
        loaded = FrameDataset.load(tmp_path / "data")
        assert len(loaded.train) == len(ds.train)
        assert len(loaded.validation) == len(ds.validation)
        assert np.allclose(
            loaded.train[0].positions, ds.train[0].positions
        )
        assert np.isclose(loaded.train[0].energy, ds.train[0].energy)

    def test_energy_statistics(self):
        ds = FrameDataset(self._frames(8), rng=0)
        stats = ds.energy_statistics()
        e = np.array([f.energy for f in ds.train])
        assert np.isclose(stats["mean"], e.mean())
        assert np.isclose(stats["per_atom_mean"], e.mean() / 4)

    def test_trajectory_slicing(self):
        traj = Trajectory(self._frames(5))
        assert len(traj[1:3]) == 2
        assert isinstance(traj[0], Frame)

    def test_generate_dataset_end_to_end(self, small_dataset):
        assert small_dataset.n_atoms == 20
        assert len(small_dataset.train) == 24
        assert len(small_dataset.validation) == 8
        # reference labels physically sane
        f = small_dataset.train[0]
        assert np.isfinite(f.energy)
        assert np.isfinite(f.forces).all()
        assert f.energy < 0.0  # bound melt

"""Fleet chaos/property suite (Hypothesis).

Three properties the elastic fleet must hold under *any* schedule of
revocations, delays, and speculation:

(a) **journal uniqueness** — however often a task is requeued or
    speculatively duplicated, each uuid reaches the journal exactly
    once (the engine resolves one future per candidate; duplicates die
    inside the fleet);
(b) **quota safety under rescale** — per-tenant ``max_in_flight`` is
    never exceeded, and a tick never dispatches past the *live* fleet
    capacity, no matter how members grow or shrink between ticks;
(c) **result equivalence** — when no evaluation permanently fails, the
    fleet's (genome → fitness) map and Pareto front are bit-identical
    to inline evaluation: revocations and speculation move work, never
    change it.

Everything runs on in-process scripted members (no interpreter
startup), so hundreds of drawn schedules stay fast.
"""

import threading

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ElasticBackend, EvaluationEngine
from repro.evo.individual import Individual
from repro.exceptions import WorkerRevoked
from repro.mo.pareto import pareto_front
from repro.obs.metrics import MetricsRegistry
from repro.service.fair_share import FairShareScheduler
from repro.service.tenancy import Tenant

FAST = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class IdentityDecoder:
    def decode(self, genome):
        return genome


class SumProblem:
    """Deterministic two-objective toy: cheap and pure."""

    n_objectives = 2

    def evaluate_with_metadata(self, phenome, uuid=None):
        x = float(np.sum(np.asarray(phenome, dtype=np.float64)))
        return np.array([x, -x]), {}


def _individuals(genomes, problem):
    out = []
    for genome in genomes:
        ind = Individual(
            np.asarray(genome, dtype=np.float64),
            decoder=IdentityDecoder(),
            problem=problem,
        )
        ind.n_objectives = problem.n_objectives
        out.append(ind)
    return out


class ScriptedFuture:
    """Resolves after ``delay`` polls; outcome decided by the script."""

    def __init__(self, individual, outcome, delay):
        self.individual = individual
        self.outcome = outcome  # "ok" | "revoke"
        self.delay = int(delay)
        self._polls = 0
        self.cancelled = False

    def done(self):
        if self._polls < self.delay:
            self._polls += 1
        return self._polls >= self.delay

    def result(self, timeout=None):
        if self.outcome == "revoke":
            raise WorkerRevoked("scripted", "spot preemption")
        from repro.engine.backends import evaluate_individual

        return evaluate_individual(self.individual)

    def cancel(self):
        self.cancelled = True


class ScriptedMember:
    """A member whose per-submission outcome/delay comes from a drawn
    schedule (cycled when submissions outnumber script entries)."""

    is_execution_backend = True

    def __init__(self, script, n_workers=2):
        self.script = list(script) or [("ok", 0)]
        self.n_workers = n_workers
        self.futures = []

    def _next(self):
        outcome, delay = self.script[len(self.futures) % len(self.script)]
        return outcome, delay

    def submit(self, individual):
        outcome, delay = self._next()
        future = ScriptedFuture(individual, outcome, delay)
        self.futures.append(future)
        return future

    def submit_batch(self, individuals):
        raise NotImplementedError("property suite uses the scalar path")

    def on_cache_hit(self, individual):
        pass


def _fleet(flaky_script, speculate):
    """A flaky member plus an always-reliable one: any revocation is
    recoverable, so no evaluation permanently fails."""
    flaky = ScriptedMember(flaky_script)
    reliable = ScriptedMember([("ok", 1)])
    fleet = ElasticBackend(
        [flaky, reliable],
        speculate=speculate,
        min_history=1,
        straggler_factor=0.0,
        min_speculate_s=0.0,
        autoscale_interval=None,
        metrics=MetricsRegistry(),
    )
    return fleet, flaky, reliable


class RecordingJournal:
    def __init__(self):
        self.uuids = []
        self._lock = threading.Lock()

    def append_evaluation(self, individual):
        with self._lock:
            self.uuids.append(individual.uuid)


outcome_st = st.tuples(
    st.sampled_from(["ok", "ok", "ok", "revoke"]),
    st.integers(min_value=0, max_value=4),
)
genomes_st = st.lists(
    st.lists(
        st.floats(
            min_value=-10,
            max_value=10,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=2,
        max_size=2,
    ),
    min_size=1,
    max_size=8,
    unique_by=tuple,
)


# ----------------------------------------------------------------------
# (a) no uuid journaled twice
# ----------------------------------------------------------------------
@FAST
@given(
    genomes=genomes_st,
    script=st.lists(outcome_st, min_size=1, max_size=10),
    speculate=st.booleans(),
)
def test_no_uuid_journaled_twice(genomes, script, speculate):
    fleet, _, _ = _fleet(script, speculate)
    journal = RecordingJournal()
    engine = EvaluationEngine(
        client=fleet,
        journal=journal,
        dedup=False,
        metrics=MetricsRegistry(),
    )
    individuals = _individuals(genomes, SumProblem())
    done = engine.evaluate(individuals)
    assert len(done) == len(individuals)
    assert len(journal.uuids) == len(set(journal.uuids))
    assert set(journal.uuids) == {ind.uuid for ind in individuals}


# ----------------------------------------------------------------------
# (b) tenant quotas hold while the fleet rescales
# ----------------------------------------------------------------------
op_st = st.one_of(
    st.tuples(st.just("submit"), st.integers(0, 1)),
    st.tuples(st.just("tick"), st.just(0)),
    st.tuples(st.just("finish"), st.just(0)),
    st.tuples(st.just("scale"), st.integers(0, 4)),
)


@FAST
@given(ops=st.lists(op_st, min_size=4, max_size=40))
def test_tenant_quota_holds_during_rescale(ops):
    member = ScriptedMember([("ok", 1000000)], n_workers=2)
    fleet = ElasticBackend(
        [member],
        autoscale_interval=None,
        metrics=MetricsRegistry(),
    )
    scheduler = FairShareScheduler(
        fleet, total_slots=6, metrics=MetricsRegistry()
    )
    quotas = {"t0": 2, "t1": 3}
    queues = {
        f"c{i}": scheduler.register(
            f"c{i}", Tenant(name=f"t{i}", max_in_flight=quotas[f"t{i}"])
        )
        for i in range(2)
    }
    problem = SumProblem()
    counter = 0
    for op, arg in ops:
        if op == "submit":
            (ind,) = _individuals([[float(counter), 0.0]], problem)
            counter += 1
            queues[f"c{arg}"].submit(ind)
        elif op == "tick":
            before = len(member.futures)
            limit = min(6, max(1, fleet.capacity()))
            scheduler.tick()
            dispatched = len(member.futures) - before
            # a tick drains, then dispatches only while below the
            # *live* fleet capacity — so whenever it dispatched at
            # all, the resulting in-flight level respects the limit
            # (a shrink below already-dispatched work only stops new
            # dispatches; it cannot recall them)
            if dispatched > 0:
                assert scheduler.snapshot()["in_flight"] <= limit
        elif op == "finish":
            pending = [
                f
                for f in member.futures
                if f._polls < f.delay and not f.cancelled
            ]
            if pending:
                pending[0].delay = 0
            scheduler.tick()
        elif op == "scale":
            member.n_workers = arg  # spot churn: even down to zero
        snap = scheduler.snapshot()
        for name, tenant in snap["tenants"].items():
            assert tenant["peak_in_flight"] <= quotas[name], (
                name,
                tenant,
            )


# ----------------------------------------------------------------------
# (c) fleet results bit-identical to inline
# ----------------------------------------------------------------------
@FAST
@given(
    genomes=genomes_st,
    script=st.lists(outcome_st, min_size=1, max_size=10),
    speculate=st.booleans(),
)
def test_fleet_front_bit_identical_to_inline(genomes, script, speculate):
    problem = SumProblem()
    inline_done = EvaluationEngine(metrics=MetricsRegistry()).evaluate(
        _individuals(genomes, problem)
    )
    fleet, _, _ = _fleet(script, speculate)
    fleet_done = EvaluationEngine(
        client=fleet, metrics=MetricsRegistry()
    ).evaluate(_individuals(genomes, problem))

    def table(individuals):
        return {
            tuple(float(g) for g in ind.genome): tuple(
                float(f) for f in np.atleast_1d(ind.fitness)
            )
            for ind in individuals
        }

    assert table(fleet_done) == table(inline_done)

    def front(individuals):
        return sorted(
            tuple(float(f) for f in ind.fitness)
            for ind in pareto_front(individuals)
        )

    assert front(fleet_done) == front(inline_done)
    # nothing may be left on the fleet's books
    assert sum(m.inflight for m in fleet.members) == 0

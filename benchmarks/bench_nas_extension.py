"""Extension bench — neural architecture search (§4 future work).

Runs NSGA-II over the 11-gene representation (training genes +
embedding/fitting depth/width) and checks the expected shape: the
search avoids both underfitting (tiny nets) and runtime-bloating
(huge nets), landing mid-capacity architectures on the frontier.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.hpo.chemical import filter_chemically_accurate
from repro.hpo.nas import (
    NASRepresentation,
    NASSurrogateProblem,
    run_nas_nsga2,
)


def test_nas_campaign(benchmark):
    records = once(
        benchmark,
        run_nas_nsga2,
        NASSurrogateProblem(seed=0),
        pop_size=80,
        generations=6,
        rng=0,
    )
    final = [i for i in records[-1].population if i.is_viable]
    assert final

    accurate = filter_chemically_accurate(final)
    assert accurate, "NAS search found no chemically accurate solutions"

    params = [
        NASSurrogateProblem._parameter_count(i.metadata["phenome"])
        for i in accurate
    ]
    rows = [
        {
            "quantity": "accurate solutions",
            "value": len(accurate),
        },
        {"quantity": "min params", "value": min(params)},
        {"quantity": "median params", "value": float(np.median(params))},
        {"quantity": "max params", "value": max(params)},
    ]
    print()
    print(format_table(rows, title="NAS: capacity of accurate solutions"))
    # the search avoids the underfitting region ...
    assert min(params) > 300
    # ... and does not blow capacity (runtime pressure caps it)
    assert np.median(params) < 40_000


def test_nas_architectures_decoded(benchmark):
    records = once(
        benchmark, run_nas_nsga2, None, 30, 2, 0
    )
    for ind in records[-1].population:
        phenome = ind.metadata.get("phenome")
        if phenome is None:
            continue
        arch = NASRepresentation.architecture_of(phenome)
        assert 1 <= len(arch["embedding_widths"]) <= 3
        assert 1 <= len(arch["fitting_widths"]) <= 3
        assert all(4 <= w for w in arch["embedding_widths"])

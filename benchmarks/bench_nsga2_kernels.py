"""Experiment ``perf-kernels`` — vectorized NSGA-II kernel timings.

Times the scalar (reference oracle) and vectorized implementations of
the two hot NSGA-II kernels — two-objective non-dominated sorting and
crowding distance — on correlated two-objective clouds at campaign
population sizes, and asserts the implementations stay bit-identical
on the benched inputs.

Reported per kernel: µs per 1k individuals for each implementation and
the vectorized speedup (a same-machine ratio, robust to CI hardware).

Run standalone (``python benchmarks/bench_nsga2_kernels.py``) or via
``benchmarks/runner.py``, which writes ``BENCH_nsga2.json`` and gates
CI on the speedup metrics.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np


def _population(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.lognormal(mean=-3.0, sigma=0.8, size=n)
    energy = base * rng.lognormal(0.0, 0.3, size=n) * 0.05
    force = base * rng.lognormal(0.0, 0.3, size=n)
    return np.column_stack([energy, force])


def _time_us(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e6


def run(quick: bool = False) -> dict:
    """Execute the bench; returns the machine-readable report dict."""
    from repro.evo import nsga2

    n = 1000 if quick else 4000
    repeats = 5 if quick else 10
    F = _population(n)

    ranks_scalar = nsga2.rank_ordinal_sort(F, impl="scalar")
    ranks_vec = nsga2.rank_ordinal_sort(F, impl="vectorized")
    assert np.array_equal(ranks_scalar, ranks_vec)
    crowd_scalar = nsga2.crowding_distance(F, ranks_vec, impl="scalar")
    crowd_vec = nsga2.crowding_distance(F, ranks_vec, impl="vectorized")
    assert np.array_equal(
        crowd_scalar.view(np.uint64), crowd_vec.view(np.uint64)
    )

    per_1k = 1000.0 / n
    sort_scalar_us = _time_us(
        lambda: nsga2.rank_ordinal_sort(F, impl="scalar"), repeats
    )
    sort_vec_us = _time_us(
        lambda: nsga2.rank_ordinal_sort(F, impl="vectorized"), repeats
    )
    crowd_scalar_us = _time_us(
        lambda: nsga2.crowding_distance(F, ranks_vec, impl="scalar"),
        repeats,
    )
    crowd_vec_us = _time_us(
        lambda: nsga2.crowding_distance(F, ranks_vec, impl="vectorized"),
        repeats,
    )

    return {
        "bench": "nsga2_kernels",
        "quick": quick,
        "n_individuals": n,
        "results": {
            "sort": {
                "scalar_us_per_1k": sort_scalar_us * per_1k,
                "vectorized_us_per_1k": sort_vec_us * per_1k,
            },
            "crowding": {
                "scalar_us_per_1k": crowd_scalar_us * per_1k,
                "vectorized_us_per_1k": crowd_vec_us * per_1k,
            },
        },
        "metrics": {
            "sort_speedup_vectorized": sort_scalar_us / sort_vec_us,
            "crowding_speedup_vectorized": crowd_scalar_us / crowd_vec_us,
        },
    }


def main(argv: Optional[list] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_nsga2.json")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    n = report["n_individuals"]
    for kernel, entry in report["results"].items():
        print(
            f"{kernel:10s} (N={n}) scalar "
            f"{entry['scalar_us_per_1k']:8.1f} us/1k  vectorized "
            f"{entry['vectorized_us_per_1k']:8.1f} us/1k"
        )
    for name, value in report["metrics"].items():
        print(f"{name}: {value:.2f}x")
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment ``real-train`` — the scaled-down *real* trainer.

Cross-checks the surrogate landscape against actual DeepPot-SE
trainings on MD data: the directions that drive the paper's findings
(training improves forces; bad learning rates fail; the full §2.2.4
workflow produces a two-element fitness from lcurve.out) must hold on
the real code path, and the per-training wall time is measured.
"""

import numpy as np
import pytest

from repro.exceptions import EvaluationError, TrainingDivergedError
from repro.hpo import DeepMDProblem, EvaluatorSettings
from repro.md.dataset import generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        n_frames=32,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=80,
        sample_interval=4,
        rng=99,
    )


@pytest.fixture(scope="module")
def problem(dataset):
    return DeepMDProblem(
        dataset,
        settings=EvaluatorSettings(
            numb_steps=60,
            batch_size=2,
            disp_freq=60,
            embedding_widths=(4, 8),
            axis_neurons=2,
            fitting_widths=(8,),
            time_limit=300.0,
        ),
    )


def _phenome(**over):
    base = {
        "start_lr": 3e-3,
        "stop_lr": 1e-4,
        "rcut": 4.5,
        "rcut_smth": 2.0,
        "scale_by_worker": "none",
        "desc_activ_func": "tanh",
        "fitting_activ_func": "tanh",
    }
    base.update(over)
    return base


def test_single_training_wall_time(problem, benchmark):
    """The per-evaluation cost of the scaled-down real trainer."""
    fitness, meta = benchmark.pedantic(
        problem.evaluate_with_metadata,
        args=(_phenome(),),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"real training: rmse_e {fitness[0]:.4f} eV/atom, rmse_f "
        f"{fitness[1]:.4f} eV/A in {meta['runtime_minutes'] * 60:.1f}s"
    )
    assert np.all(np.isfinite(fitness))


def test_training_improves_over_untrained(dataset, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """More optimization steps beat fewer — the landscape's premise
    that the EA is steering a *real* training signal."""
    from repro.deepmd.data import prepare_batches
    from repro.deepmd.descriptor import DescriptorConfig
    from repro.deepmd.model import DeepPotModel, ModelConfig
    from repro.deepmd.training import Trainer, TrainingConfig

    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=4.5, rcut_smth=2.0),
        embedding_widths=(4, 8),
        axis_neurons=2,
        fitting_widths=(8,),
    )
    model = DeepPotModel(config, rng=0)
    trainer = Trainer(
        model,
        dataset,
        TrainingConfig(
            numb_steps=150, batch_size=2, disp_freq=150,
            start_lr=5e-3, stop_lr=1e-4,
        ),
        rng=1,
    )
    e0, f0 = trainer.evaluate_validation()
    result = trainer.train()
    print()
    print(
        f"force RMSE: untrained {f0:.4f} -> trained "
        f"{result.rmse_f_val:.4f} eV/A"
    )
    assert result.rmse_f_val < f0


def test_bad_learning_rate_fails_like_surrogate(problem, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """Extreme learning rates diverge on the real trainer, matching
    the surrogate's failure region."""
    with pytest.raises((TrainingDivergedError, EvaluationError)):
        problem.evaluate_with_metadata(
            _phenome(start_lr=5000.0, stop_lr=1000.0)
        )


def test_invalid_descriptor_fails_like_surrogate(problem, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    with pytest.raises(Exception):
        problem.evaluate_with_metadata(
            _phenome(rcut=3.0, rcut_smth=3.5)
        )


def test_training_cost_grows_with_rcut(dataset, benchmark):
    """The runtime side of the paper's rcut trade-off holds on the
    real trainer: a larger descriptor cutoff means more neighbors and
    a costlier step.  (The accuracy side is a long-range-physics
    effect the toy reference potential cannot express — see the
    repro.hpo.landscape docstring.)"""
    import time as _time

    from benchmarks.conftest import once
    from repro.deepmd.descriptor import DescriptorConfig
    from repro.deepmd.model import DeepPotModel, ModelConfig
    from repro.deepmd.training import Trainer, TrainingConfig

    once(benchmark, lambda: None)
    times = {}
    for rcut in (2.5, 6.0):
        model = DeepPotModel(
            ModelConfig(
                descriptor=DescriptorConfig(rcut=rcut, rcut_smth=1.5),
                embedding_widths=(4, 8),
                axis_neurons=2,
                fitting_widths=(8,),
            ),
            rng=0,
        )
        trainer = Trainer(
            model,
            dataset,
            TrainingConfig(numb_steps=40, batch_size=2, disp_freq=40),
            rng=1,
        )
        t0 = _time.perf_counter()
        trainer.train()
        times[rcut] = _time.perf_counter() - t0
    print()
    print(
        f"40-step training: rcut=2.5 -> {times[2.5]:.2f}s, "
        f"rcut=6.0 -> {times[6.0]:.2f}s"
    )
    assert times[6.0] > times[2.5]


def test_worker_scaling_changes_training(dataset, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """linear scaling at 6 workers really multiplies the start rate —
    verified through the schedule objects the trainer builds."""
    from repro.deepmd.descriptor import DescriptorConfig
    from repro.deepmd.model import DeepPotModel, ModelConfig
    from repro.deepmd.training import Trainer, TrainingConfig

    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=4.5, rcut_smth=2.0),
        embedding_widths=(4,),
        axis_neurons=2,
        fitting_widths=(4,),
    )
    lrs = {}
    for scheme in ("linear", "sqrt", "none"):
        trainer = Trainer(
            DeepPotModel(config, rng=0),
            dataset,
            TrainingConfig(
                numb_steps=10,
                start_lr=1e-3,
                stop_lr=1e-5,
                scale_by_worker=scheme,
                n_workers=6,
            ),
            rng=0,
        )
        lrs[scheme] = trainer.schedule(0)
    print()
    print(f"effective start rates at 6 workers: {lrs}")
    assert np.isclose(lrs["linear"], 6e-3)
    assert np.isclose(lrs["sqrt"], np.sqrt(6) * 1e-3)
    assert np.isclose(lrs["none"], 1e-3)

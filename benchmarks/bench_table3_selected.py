"""Experiment ``table3`` — Table 3: three selected chemically accurate
solutions (lowest force loss, lowest energy loss, lowest runtime).

The paper's selected solutions share a signature — high rcut (10–11.5
Å), low rcut_smth (~2.1–2.4 Å), "none" worker scaling, tanh/softplus
activations, runtimes under ~75 minutes — which the assertions encode
as bands.
"""

import numpy as np

from repro.analysis import format_table, table3_rows
from repro.hpo.chemical import (
    ENERGY_ACCURACY_EV_PER_ATOM,
    FORCE_ACCURACY_EV_PER_A,
)


def test_table3_selection(paper_campaign, benchmark):
    rows = benchmark(table3_rows, paper_campaign)
    dicts = [r.as_dict() for r in rows]
    print()
    print(format_table(dicts, title="Table 3 (reproduced)"))

    assert [r.criterion for r in rows] == [
        "lowest force loss",
        "lowest energy loss",
        "lowest runtime",
    ]
    for row in dicts:
        assert row["found"], "no chemically accurate solution found"
        # all three selections satisfy the chemical thresholds
        assert row["energy loss (eV/atom)"] < ENERGY_ACCURACY_EV_PER_ATOM
        assert row["force loss (eV/A)"] < FORCE_ACCURACY_EV_PER_A
        # paper signature: large radial cutoff, positive runtime
        assert row["rcut"] > 8.0
        assert 0.0 < row["runtime (min.)"] < 120.0

    by_name = {r["criterion"]: r for r in dicts}
    # the criteria really select the respective minima
    force_vals = [r["force loss (eV/A)"] for r in dicts]
    assert by_name["lowest force loss"]["force loss (eV/A)"] == min(
        force_vals
    )
    energy_vals = [r["energy loss (eV/atom)"] for r in dicts]
    assert by_name["lowest energy loss"][
        "energy loss (eV/atom)"
    ] == min(energy_vals)
    runtime_vals = [r["runtime (min.)"] for r in dicts]
    assert by_name["lowest runtime"]["runtime (min.)"] == min(
        runtime_vals
    )


def test_table3_consistent_with_population(paper_campaign, benchmark):
    from benchmarks.conftest import once
    from repro.hpo.chemical import (
        filter_chemically_accurate,
        select_representatives,
    )

    pool = paper_campaign.last_generation_individuals()
    accurate = filter_chemically_accurate(pool)
    reps = once(benchmark, select_representatives, pool)
    best_force = min(float(i.fitness[1]) for i in accurate)
    assert float(reps["lowest_force"].fitness[1]) == best_force

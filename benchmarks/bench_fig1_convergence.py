"""Experiment ``fig1`` — Fig. 1: per-generation loss distributions.

Benchmarks the full campaign (5 runs × 7 generations × 100
individuals — the paper's 3500 trainings) and regenerates the level
plots: pooled energy/force losses per generation with the paper's
outlier-culling rule, plus the convergence narrative of §3.1.
"""

import numpy as np

from benchmarks.conftest import run_paper_campaign
from repro.analysis import (
    convergence_summary,
    format_table,
    generation_level_plots,
)


def test_fig1_campaign_and_level_plots(benchmark):
    result = benchmark.pedantic(
        run_paper_campaign, rounds=1, iterations=1
    )
    panels = generation_level_plots(result)
    print()
    print(
        format_table(
            [p.summary() for p in panels],
            title="Fig. 1 - pooled loss distributions per generation",
        )
    )
    # paper shape: 7 generations of 500 pooled evaluations each
    assert result.n_trainings == 3500
    assert len(panels) == 7
    # generation 0 is the random population and contains outliers that
    # the paper culls (force > 0.6 eV/A or energy > 0.03 eV/atom)
    assert panels[0].n_culled > 0
    # the EA tightens the distributions: final medians far below initial
    first, last = panels[0].summary(), panels[-1].summary()
    assert last["median_force"] < 0.6 * first["median_force"]
    assert last["median_energy"] < 0.6 * first["median_energy"]


def test_fig1_convergence_shape(paper_campaign, benchmark):
    summary = benchmark(convergence_summary, paper_campaign)
    shifts = summary.median_shift()
    print()
    print(
        "median shift per EA step: "
        + ", ".join(f"{s:.3f}" for s in shifts)
    )
    # §3.1: the first EA step does the big clean-up ...
    assert shifts[0] == shifts.max()
    # ... and the last steps change little ("distributions between the
    # last three runs being similar, indicating convergence")
    assert np.all(shifts[-2:] < 0.35 * shifts[0])

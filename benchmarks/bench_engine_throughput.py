"""Experiment ``perf-engine`` — execution-backend throughput.

Measures end-to-end engine throughput (``EvaluationEngine.evaluate``
over a batch of distinct candidates) for the inline backend and the
multiprocessing pool backend at several worker counts, on a
**dispatch-bound** workload: each evaluation sleeps for a fixed
duration, like a training job that parks on a GPU.  A sleep-bound task
makes the measurement honest on any host — a 4-worker pool can
overlap sleeps even on a single-core CI runner, so the speedup
reflects the backend's dispatch machinery, not the machine's core
count.

Pool startup (spawning interpreters) is excluded from the timed
region via a warm-up batch; startup cost is reported separately.

Run standalone (``python benchmarks/bench_engine_throughput.py``) or
via ``benchmarks/runner.py``, which writes ``BENCH_engine.json`` and
gates CI on the ``pool4_speedup_vs_inline`` metric.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

# module-level so the class is importable by spawn-started pool workers
POOL_WORKER_COUNTS = (1, 4)


class SleepProblem:
    """A problem whose cost is pure wall-clock: sleep, then return a
    deterministic fitness derived from the phenome (so every backend
    returns bit-identical results)."""

    n_objectives = 2

    def __init__(self, duration: float = 0.02) -> None:
        self.duration = float(duration)

    def evaluate(self, phenome: Any) -> np.ndarray:
        time.sleep(self.duration)
        g = np.atleast_1d(np.asarray(phenome, dtype=np.float64))
        return np.array([float(np.sum(g)), float(np.sum(g * g))])


def _individuals(problem: SleepProblem, n: int) -> list[Any]:
    from repro.evo.individual import Individual

    rng = np.random.default_rng(1234)
    # distinct genomes: nothing collapses onto the dedup path
    return [Individual(rng.normal(size=3), problem=problem) for _ in range(n)]


def _measure(client: Any, problem: SleepProblem, n_tasks: int) -> dict:
    from repro.engine import EvaluationEngine
    from repro.obs.metrics import MetricsRegistry

    engine = EvaluationEngine(
        client=client, metrics=MetricsRegistry(), fault_injector=None
    )
    # warm-up: first dispatch pays lazy costs (pool pipes, imports)
    engine.evaluate(_individuals(problem, 2))
    # snapshot after warm-up so the reported counters cover only the
    # timed batch (the warm-up's 2 evaluations are excluded)
    before = engine.stats.copy()
    batch = _individuals(problem, n_tasks)
    t0 = time.perf_counter()
    done = engine.evaluate(batch)
    wall = time.perf_counter() - t0
    assert len(done) == n_tasks
    assert all(ind.fitness is not None for ind in done)
    return {
        "wall_s": wall,
        "evals_per_sec": n_tasks / wall,
        "fresh": engine.stats.fresh - before.fresh,
    }


def _measure_fleet(
    problem: SleepProblem, n_tasks: int, revoke: bool
) -> dict:
    """Time a sleep-bound batch through the elastic fleet (2-worker
    pool + inline reserve, autoscale off).  With ``revoke`` one pool
    worker is preempted right after dispatch, so the run pays the full
    requeue path: bury the in-flight chunk, replay it on the survivor,
    finish on half the capacity."""
    from repro.engine import (
        ElasticBackend,
        EvaluationEngine,
        InlineBackend,
        ProcessPoolBackend,
    )
    from repro.obs.metrics import MetricsRegistry

    pool = ProcessPoolBackend(workers=2)
    fleet = ElasticBackend(
        [pool, InlineBackend()],
        autoscale_interval=None,
        owns_members=True,
    )
    with fleet:
        engine = EvaluationEngine(
            client=fleet, metrics=MetricsRegistry(), fault_injector=None
        )
        engine.evaluate(_individuals(problem, 2))  # warm-up
        batch = _individuals(problem, n_tasks)
        t0 = time.perf_counter()
        for ind in batch:
            engine.submit(ind)
        if revoke:
            pool.revoke_worker()
        done: list[Any] = []
        while engine.has_pending():
            done.extend(engine.wait_any(timeout=120))
        wall = time.perf_counter() - t0
    assert len(done) == n_tasks
    assert all(ind.fitness is not None for ind in done)
    return {"wall_s": wall, "evals_per_sec": n_tasks / wall}


def _surrogate_individuals(problem: Any, n: int) -> list[Any]:
    from repro.evo.individual import RobustIndividual
    from repro.hpo.representation import DeepMDRepresentation

    rep = DeepMDRepresentation
    rng = np.random.default_rng(4321)
    decoder = rep.decoder()
    out = []
    for _ in range(n):
        genome = rng.uniform(rep.init_ranges[:, 0], rep.init_ranges[:, 1])
        ind = RobustIndividual(genome, decoder=decoder, problem=problem)
        ind.n_objectives = problem.n_objectives
        out.append(ind)
    return out


def _measure_surrogate(n_tasks: int, mode: str) -> dict:
    """Inline engine over the vectorized surrogate: ``scalar`` submits
    one task per individual, ``batch`` routes the whole population
    through the batch data plane (one NumPy evaluation per chunk)."""
    from repro.engine import EvaluationEngine
    from repro.hpo.landscape import SurrogateDeepMDProblem
    from repro.obs.metrics import MetricsRegistry

    problem = SurrogateDeepMDProblem(seed=99)
    engine = EvaluationEngine(metrics=MetricsRegistry(), fault_injector=None)
    # warm-up both paths (imports, first-call caches)
    engine.evaluate(_surrogate_individuals(problem, 2))
    engine.evaluate_batch(_surrogate_individuals(problem, 2))
    before = engine.stats.copy()
    batch = _surrogate_individuals(problem, n_tasks)
    t0 = time.perf_counter()
    if mode == "batch":
        done = engine.evaluate_batch(batch)
    else:
        done = engine.evaluate(batch)
    wall = time.perf_counter() - t0
    assert len(done) == n_tasks
    assert all(ind.fitness is not None for ind in done)
    return {
        "wall_s": wall,
        "evals_per_sec": n_tasks / wall,
        "fresh": engine.stats.fresh - before.fresh,
    }


def run(quick: bool = False) -> dict:
    """Execute the bench; returns the machine-readable report dict."""
    from repro.engine import ProcessPoolBackend

    duration = 0.02 if quick else 0.05
    n_tasks = 48 if quick else 96
    problem = SleepProblem(duration=duration)

    results: dict[str, dict] = {}
    results["inline"] = _measure(None, problem, n_tasks)
    inline_eps = results["inline"]["evals_per_sec"]

    for workers in POOL_WORKER_COUNTS:
        t0 = time.perf_counter()
        with ProcessPoolBackend(workers=workers) as pool:
            startup = time.perf_counter() - t0
            entry = _measure(pool, problem, n_tasks)
        entry["startup_s"] = startup
        entry["speedup_vs_inline"] = entry["evals_per_sec"] / inline_eps
        results[f"pool_{workers}"] = entry

    # fleet requeue path: same sleep-bound batch through the elastic
    # fleet, clean vs one spot-style preemption mid-flight.  The ratio
    # bounds the cost of losing a worker: it folds in both the replay
    # of the buried chunk and finishing on half the capacity, so a
    # clean fleet keeps it near 1 and anything pathological in the
    # requeue machinery (storms, stalls, duplicate dispatch) blows it
    # past the ceiling.
    results["fleet_clean"] = _measure_fleet(problem, n_tasks, revoke=False)
    results["fleet_revoked"] = _measure_fleet(problem, n_tasks, revoke=True)
    results["fleet_revoked"]["requeue_overhead_ratio"] = (
        results["fleet_revoked"]["wall_s"]
        / results["fleet_clean"]["wall_s"]
    )

    # batch data plane: vectorized surrogate, scalar loop vs one
    # chunked batch submission (compute-bound, not sleep-bound)
    n_surrogate = 2048  # large enough to amortize per-batch overhead
    results["batch_scalar"] = _measure_surrogate(n_surrogate, "scalar")
    results["batch_vectorized"] = _measure_surrogate(n_surrogate, "batch")
    results["batch_vectorized"]["speedup_vs_inline"] = (
        results["batch_vectorized"]["evals_per_sec"]
        / results["batch_scalar"]["evals_per_sec"]
    )
    results["batch_vectorized"]["n_tasks"] = n_surrogate
    results["batch_scalar"]["n_tasks"] = n_surrogate

    return {
        "bench": "engine_throughput",
        "quick": quick,
        "task_duration_s": duration,
        "n_tasks": n_tasks,
        "results": results,
        # the gateable metrics: same-machine ratios, robust to CI
        # hardware differences (absolute evals/sec is informational)
        "metrics": {
            "pool4_speedup_vs_inline": results["pool_4"][
                "speedup_vs_inline"
            ],
            "pool1_speedup_vs_inline": results["pool_1"][
                "speedup_vs_inline"
            ],
            "batch_speedup_vs_inline": results["batch_vectorized"][
                "speedup_vs_inline"
            ],
            "fleet_requeue_overhead": results["fleet_revoked"][
                "requeue_overhead_ratio"
            ],
        },
    }


def main(argv: Optional[list] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    for name, entry in report["results"].items():
        speed = entry.get("speedup_vs_inline")
        extra = f"  ({speed:.2f}x vs inline)" if speed else ""
        print(
            f"{name:10s} {entry['wall_s']:7.2f} s  "
            f"{entry['evals_per_sec']:7.1f} evals/s{extra}"
        )
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

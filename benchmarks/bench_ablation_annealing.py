"""Experiment ``ablation-anneal`` — the ×0.85 mutation annealing.

§2.2.3: the paper anneals the mutation deviations by 0.85 per
generation and reports that the adaptive 1/5-success rule "was not
necessary".  The bench compares final front quality for annealed,
non-annealed, and 1/5-rule-driven deployments on the surrogate
landscape.
"""

import numpy as np

from repro.analysis import format_table
from repro.hpo import NSGA2Settings, SurrogateDeepMDProblem, run_deepmd_nsga2
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d

REFERENCE = (0.02, 0.2)


def _final_hv(anneal_factor: float, seed: int) -> float:
    records = run_deepmd_nsga2(
        SurrogateDeepMDProblem(seed=seed),
        settings=NSGA2Settings(
            pop_size=60, generations=6, anneal_factor=anneal_factor
        ),
        rng=seed,
    )
    F = np.array(
        [i.fitness for i in records[-1].population if i.is_viable]
    )
    return hypervolume_2d(F[non_dominated_mask(F)], REFERENCE)


def test_annealed_deployment(benchmark):
    hv = benchmark.pedantic(
        _final_hv, args=(0.85, 0), rounds=1, iterations=1
    )
    assert hv > 0.0


def test_no_annealing_deployment(benchmark):
    hv = benchmark.pedantic(
        _final_hv, args=(1.0, 0), rounds=1, iterations=1
    )
    assert hv > 0.0


def test_annealing_comparison(benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """Across seeds, the paper's fixed x0.85 schedule is competitive:
    annealing never loses badly to no annealing on this landscape (it
    exists to stabilize the final generations)."""
    seeds = [0, 1, 2, 3, 4]
    annealed = [_final_hv(0.85, s) for s in seeds]
    flat = [_final_hv(1.0, s) for s in seeds]
    rows = [
        {
            "schedule": "x0.85 per generation (paper)",
            "mean hypervolume": float(np.mean(annealed)),
            "min": float(np.min(annealed)),
        },
        {
            "schedule": "no annealing",
            "mean hypervolume": float(np.mean(flat)),
            "min": float(np.min(flat)),
        },
    ]
    print()
    print(format_table(rows, title="annealing ablation (5 seeds)"))
    # competitive: within 10% on average
    assert np.mean(annealed) > 0.9 * np.mean(flat)


def test_one_fifth_rule_not_necessary(benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """§2.2.3's claim: the 1/5-success rule adds nothing here.  Run a
    deployment where the schedule adapts by offspring success rate and
    compare with the fixed schedule."""
    import numpy as np

    from repro.evo import ops
    from repro.evo.annealing import OneFifthSuccessRule
    from repro.evo.individual import RobustIndividual
    from repro.evo.nsga2 import (
        crowding_distance_calc,
        rank_ordinal_sort_op,
    )
    from repro.hpo.representation import DeepMDRepresentation
    from repro.rng import ensure_rng

    def run_with_rule(seed: int) -> float:
        problem = SurrogateDeepMDProblem(seed=seed)
        rep = DeepMDRepresentation
        gen_rng = ensure_rng(seed)
        rule = OneFifthSuccessRule(rep.mutation_std, factor=0.85)
        parents = []
        for _ in range(60):
            genome = gen_rng.uniform(
                rep.init_ranges[:, 0], rep.init_ranges[:, 1]
            )
            ind = RobustIndividual(
                genome, decoder=rep.decoder(), problem=problem
            )
            ind.n_objectives = 2
            parents.append(ind.evaluate())
        for _ in range(6):
            offspring = ops.pipe(
                parents,
                lambda pop: ops.random_selection(pop, rng=gen_rng),
                ops.clone,
                ops.mutate_gaussian(
                    std=rule.current,
                    hard_bounds=rep.bounds,
                    rng=gen_rng,
                ),
                ops.eval_pool(client=None, size=len(parents)),
            )
            # success = offspring dominating the median parent
            viable = [o for o in offspring if o.is_viable]
            parent_med = np.median(
                [p.fitness for p in parents if p.is_viable], axis=0
            )
            successes = sum(
                1
                for o in viable
                if np.all(o.fitness <= parent_med)
            )
            combined = rank_ordinal_sort_op(parents=parents)(offspring)
            crowded = crowding_distance_calc(combined)
            parents = ops.truncation_selection(
                size=60, key=lambda x: (-x.rank, x.distance)
            )(crowded)
            rule.step(success_rate=successes / max(len(offspring), 1))
        F = np.array(
            [i.fitness for i in parents if i.is_viable]
        )
        return hypervolume_2d(F[non_dominated_mask(F)], REFERENCE)

    seeds = [0, 1, 2]
    fixed = [_final_hv(0.85, s) for s in seeds]
    ruled = [run_with_rule(s) for s in seeds]
    print()
    print(
        f"fixed x0.85 HV: {np.mean(fixed):.4f}; 1/5-rule HV: "
        f"{np.mean(ruled):.4f}"
    )
    # "not necessary": the rule brings no meaningful improvement
    assert np.mean(ruled) < np.mean(fixed) * 1.1

"""Shared fixtures for the benchmark harness.

``paper_campaign`` is the full-scale reproduction campaign (5 runs ×
100 individuals × 7 generations = 3500 surrogate trainings) that
Figs. 1–3 and Tables 2–3 are computed from; it is session-scoped so
the analysis benches share one instance.
"""

from __future__ import annotations

import pytest

from repro.hpo.campaign import Campaign, CampaignConfig, CampaignResult
from repro.hpo.landscape import SurrogateDeepMDProblem

PAPER_SEED = 2023


def run_paper_campaign(seed: int = PAPER_SEED) -> CampaignResult:
    config = CampaignConfig(
        n_runs=5, pop_size=100, generations=6, base_seed=seed
    )
    return Campaign(
        lambda s: SurrogateDeepMDProblem(seed=s), config
    ).run()


@pytest.fixture(scope="session")
def paper_campaign() -> CampaignResult:
    return run_paper_campaign()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture.

    Used by shape-assertion benches whose computation should be timed
    but not repeated (campaigns, comparisons); also keeps every bench
    runnable under ``--benchmark-only``.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

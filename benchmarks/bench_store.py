"""Durable-state overhead: the cache and journal must be cheap.

One paper-scale training is ~2 GPU-hours, so the per-evaluation costs
here have astronomical headroom — but the store also sits on the
surrogate path used by every other bench, where evaluations take
microseconds.  Three measures:

* warm-path cost of a cache hit (index and disk) vs. a surrogate
  evaluation — a disk hit must stay far below one real training's
  startup, an index hit far below a surrogate call;
* journal append throughput (fsync per generation record is the
  designed durability/latency trade);
* end-to-end: a journaled+cached campaign vs. the bare campaign, then
  a rerun over the warm cache, which should beat the bare campaign by
  skipping every evaluation.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.representation import DeepMDRepresentation
from repro.store import (
    CachedProblem,
    CampaignJournal,
    EvaluationCache,
    journal_path,
)

SEED = 2023
N_LOOKUPS = 500


def _phenomes(n: int) -> list[dict]:
    decoder = DeepMDRepresentation.decoder()
    rng = np.random.default_rng(SEED)
    ranges = DeepMDRepresentation.init_ranges
    genomes = rng.uniform(ranges[:, 0], ranges[:, 1], size=(n, len(ranges)))
    return [decoder.decode(g) for g in genomes]


def _warm_cache(directory) -> tuple[EvaluationCache, list[str]]:
    """Evaluate N random phenomes into a cache (failures included, so
    every key is a guaranteed hit)."""
    from repro.exceptions import EvaluationError

    cache = EvaluationCache(directory, cache_failures=True)
    problem = CachedProblem(SurrogateDeepMDProblem(seed=SEED), cache)
    phenomes = _phenomes(N_LOOKUPS)
    keys = [problem.cache_key(p) for p in phenomes]
    for phenome in phenomes:
        try:
            problem.evaluate_with_metadata(phenome)
        except EvaluationError:
            pass  # memoized as a failure — still a cacheable result
    return cache, keys


def test_cache_hit_warm_index(benchmark, tmp_path):
    cache, keys = _warm_cache(tmp_path)

    def hit_all() -> int:
        return sum(1 for k in keys if cache.lookup(k) is not None)

    assert benchmark(hit_all) == N_LOOKUPS


def test_cache_hit_cold_index(benchmark, tmp_path):
    _, keys = _warm_cache(tmp_path)

    def disk_hit_all() -> int:
        cold = EvaluationCache(tmp_path)  # fresh index: all disk reads
        return sum(1 for k in keys if cold.lookup(k) is not None)

    assert benchmark(disk_hit_all) == N_LOOKUPS


def test_journal_append_generation(benchmark, tmp_path):
    config = CampaignConfig(
        n_runs=1, pop_size=20, generations=2, base_seed=SEED
    )
    journal = CampaignJournal(
        journal_path(tmp_path), problem_spec={"backend": "surrogate"}
    )

    def run_journaled():
        return Campaign(
            lambda s: SurrogateDeepMDProblem(seed=s),
            config,
            journal=journal,
        ).run()

    result = once(benchmark, run_journaled)
    journal.close()
    assert result.n_trainings == 20 * 3


def test_campaign_rerun_over_warm_cache(benchmark, tmp_path):
    """A fully warmed cache turns the campaign into pure replay."""
    cache = EvaluationCache(tmp_path)
    config = CampaignConfig(
        n_runs=2, pop_size=20, generations=3, base_seed=SEED
    )
    factory = lambda s: CachedProblem(  # noqa: E731
        SurrogateDeepMDProblem(seed=s), cache
    )
    cold = Campaign(factory, config).run()

    warm = once(benchmark, lambda: Campaign(factory, config).run())
    assert warm.n_trainings == cold.n_trainings
    stats = cache.stats()
    # deterministic EA: the rerun asked for exactly the same phenomes
    assert stats["hits"] >= warm.n_trainings

"""Extension bench — asynchronous steady-state vs generational NSGA-II.

The paper's deployment is generational: every generation waits for its
slowest training (rcut-heavy configs run ~2× longer than light ones),
idling finished nodes at the barrier.  The authors' cited prior work
motivates the steady-state alternative.  This bench runs both on the
same surrogate problem with *simulated heterogeneous task durations*
and compares (a) solution quality at equal evaluation budget and
(b) the barrier's wall-clock cost.
"""

import time

import numpy as np

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.distributed import LocalCluster
from repro.evo.asynchronous import steady_state_nsga2
from repro.hpo import (
    NSGA2Settings,
    SurrogateDeepMDProblem,
    run_deepmd_nsga2,
)
from repro.hpo.representation import DeepMDRepresentation
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d

REFERENCE = (0.02, 0.2)
POP = 24
BUDGET = 24 * 5


class SlowSurrogate(SurrogateDeepMDProblem):
    """Surrogate whose evaluation really sleeps ∝ the modeled runtime,
    so executor-level scheduling effects become measurable."""

    #: wall seconds per simulated minute
    time_scale = 0.0004

    def evaluate_with_metadata(self, phenome, uuid=None):
        fitness, meta = super().evaluate_with_metadata(phenome, uuid=uuid)
        time.sleep(meta["runtime_minutes"] * self.time_scale)
        return fitness, meta


def _hv(individuals) -> float:
    F = np.array(
        [i.fitness for i in individuals if i.is_viable]
    )
    if len(F) == 0:
        return 0.0
    return hypervolume_2d(F[non_dominated_mask(F)], REFERENCE)


def test_generational_wall_clock(benchmark):
    def run():
        with LocalCluster(n_workers=6) as cluster:
            return run_deepmd_nsga2(
                SlowSurrogate(seed=0),
                settings=NSGA2Settings(pop_size=POP, generations=4),
                client=cluster.client(),
                rng=0,
            )

    records = once(benchmark, run)
    assert sum(len(r.evaluated) for r in records) == BUDGET


def test_steady_state_wall_clock(benchmark):
    def run():
        with LocalCluster(n_workers=6) as cluster:
            return steady_state_nsga2(
                problem=SlowSurrogate(seed=0),
                init_ranges=DeepMDRepresentation.init_ranges,
                initial_std=DeepMDRepresentation.mutation_std,
                pop_size=POP,
                max_evaluations=BUDGET,
                client=cluster.client(),
                hard_bounds=DeepMDRepresentation.bounds,
                decoder=DeepMDRepresentation.decoder(),
                rng=0,
            )

    record = once(benchmark, run)
    assert record.evaluations == BUDGET


def test_async_matches_quality_at_equal_budget(benchmark):
    once(benchmark, lambda: None)
    with LocalCluster(n_workers=6) as cluster:
        gen_records = run_deepmd_nsga2(
            SurrogateDeepMDProblem(seed=0),
            settings=NSGA2Settings(pop_size=POP, generations=4),
            client=cluster.client(),
            rng=0,
        )
    with LocalCluster(n_workers=6) as cluster:
        ss_record = steady_state_nsga2(
            problem=SurrogateDeepMDProblem(seed=0),
            init_ranges=DeepMDRepresentation.init_ranges,
            initial_std=DeepMDRepresentation.mutation_std,
            pop_size=POP,
            max_evaluations=BUDGET,
            client=cluster.client(),
            hard_bounds=DeepMDRepresentation.bounds,
            decoder=DeepMDRepresentation.decoder(),
            rng=0,
        )
    gen_hv = _hv(gen_records[-1].population)
    ss_hv = _hv(ss_record.population)
    rows = [
        {"scheme": "generational (paper)", "evaluations": BUDGET,
         "hypervolume": gen_hv},
        {"scheme": "steady-state (async)", "evaluations": BUDGET,
         "hypervolume": ss_hv},
    ]
    print()
    print(format_table(rows, title="async vs generational at equal budget"))
    # the async scheme is a quality-neutral scheduling change
    assert ss_hv > 0.7 * gen_hv

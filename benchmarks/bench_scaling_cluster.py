"""Experiment ``perf-scale`` — §2.2.5's deployment envelope.

* the live executor scales an evaluation wave across workers;
* worker failures cost reassignments, not results;
* the discrete-event simulation shows 7 × 100 trainings fitting the
  12-hour / 100-node allocation, and quantifies the nanny trade-off the
  paper describes.
"""

import time

import numpy as np
import pytest

from repro.distributed import LocalCluster, RandomFaults
from repro.hpc import BatchJob, ClusterSimulation, TrainingRuntimeModel
from repro.rng import ensure_rng


def _wave(client, n_tasks: int, duration: float) -> None:
    futures = client.map(lambda _: time.sleep(duration), range(n_tasks))
    client.gather(futures, timeout=60)


@pytest.mark.parametrize("n_workers", [1, 4, 8])
def test_executor_scaling(benchmark, n_workers):
    """Wall time for a fixed wave shrinks with worker count."""
    with LocalCluster(n_workers=n_workers) as cluster:
        client = cluster.client()
        benchmark.pedantic(
            _wave,
            args=(client, 16, 0.01),
            rounds=3,
            iterations=1,
        )


def test_executor_speedup_is_real(benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    timings = {}
    for n in (1, 8):
        with LocalCluster(n_workers=n) as cluster:
            client = cluster.client()
            t0 = time.monotonic()
            _wave(client, 16, 0.02)
            timings[n] = time.monotonic() - t0
    print()
    print(
        f"16-task wave: 1 worker {timings[1]:.2f}s, 8 workers "
        f"{timings[8]:.2f}s ({timings[1] / timings[8]:.1f}x)"
    )
    assert timings[8] < timings[1] / 2.5


def test_faulty_workers_still_complete(benchmark):
    def run():
        policy = RandomFaults(rate=0.08, max_failures=3, rng=0)
        with LocalCluster(
            n_workers=6, fault_policy=policy, max_retries=4
        ) as cluster:
            client = cluster.client()
            futures = client.map(lambda x: x, range(60))
            out = client.gather(futures, timeout=60)
            stats = cluster.scheduler.stats()
        return out, stats

    out, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"scheduler stats under faults: {stats}")
    assert out == list(range(60))
    assert stats["completed"] == 60


def test_simulated_campaign_fits_allocation(benchmark):
    """7 generations x 100 trainings on 100 nodes inside 12 hours."""
    rng = ensure_rng(0)
    model = TrainingRuntimeModel(rng=rng)
    workloads = [
        [model.runtime_minutes(r) for r in rng.uniform(6.0, 12.0, 100)]
        for _ in range(7)
    ]

    def simulate():
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=100, walltime_minutes=720.0),
            runtime_model=model,
            rng=1,
        )
        return sim.run_campaign(workloads)

    report = benchmark.pedantic(simulate, rounds=1, iterations=1)
    summary = report.summary()
    print()
    print(f"campaign simulation: {summary}")
    assert not report.walltime_exceeded
    assert report.evaluations_completed == 700
    assert summary["total_hours"] < 12.0


def test_nanny_tradeoff_quantified(benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    """§2.2.5: nannies only help for transient faults; with permanent
    hardware faults they waste restarts.  Compare node retention."""
    rng = ensure_rng(0)
    model = TrainingRuntimeModel(rng=rng)
    workloads = [[50.0] * 50] * 5

    def run(nannies, transient_fraction):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=50, walltime_minutes=1e6),
            runtime_model=model,
            node_mtbf_minutes=2000.0,
            nannies=nannies,
            transient_fraction=transient_fraction,
            max_retries=10,
            rng=3,
        )
        return sim.run_campaign(workloads)

    no_nanny = run(False, 0.0)
    nanny_transient = run(True, 1.0)
    print()
    print(
        f"nodes lost - no nannies: {no_nanny.nodes_lost}, "
        f"nannies (transient faults): {nanny_transient.nodes_lost}"
    )
    # with fully transient faults nannies recover nodes
    assert nanny_transient.nodes_lost <= no_nanny.nodes_lost
    # either way no evaluation is lost: the scheduler requeues
    assert no_nanny.evaluations_completed == 250

"""The benchmark runner and CI regression gate.

Runs the machine-readable perf benches and writes one JSON report per
bench (``BENCH_engine.json``, ``BENCH_nsga2.json``).  With ``--check``
it compares each report's ``metrics`` block against the committed
``benchmarks/baselines.json`` and exits non-zero when any metric
regresses beyond its tolerance — the CI ``bench-gate`` job runs
exactly this.

Baselines are deliberately *same-machine ratios* (pool speedup over
inline, vectorized speedup over scalar) rather than absolute
wall-clock numbers, so the gate is robust to CI hardware changing
underneath it.  Each baseline entry carries::

    {"value": <reference>, "direction": "higher"|"lower", "tolerance": 0.25}

``direction: higher`` means bigger is better — the gate fails when the
measured value drops below ``value * (1 - tolerance)``; ``lower``
mirrors that.  To refresh the baselines after an intentional
performance change, run::

    python benchmarks/runner.py --quick --write-baselines

and commit the updated ``benchmarks/baselines.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINES_PATH = Path(__file__).parent / "baselines.json"

#: bench name -> (module runner, report filename)
BENCHES = {
    "engine": "BENCH_engine.json",
    "nsga2": "BENCH_nsga2.json",
    "obs": "BENCH_obs.json",
    "mo": "BENCH_mo.json",
}


def _run_bench(name: str, quick: bool) -> dict:
    if name == "engine":
        from benchmarks.bench_engine_throughput import run
    elif name == "obs":
        from benchmarks.bench_obs_overhead import run
    elif name == "mo":
        from benchmarks.bench_mo_metrics import run
    else:
        from benchmarks.bench_nsga2_kernels import run
    return run(quick=quick)


def check_metrics(
    measured: dict[str, float], baselines: dict[str, dict]
) -> list[str]:
    """Regression messages for every gated metric (empty = pass).

    Metrics present in the report but absent from the baselines are
    ignored (informational); baselined metrics missing from the report
    fail loudly so a renamed metric can't silently disable its gate.
    """
    failures = []
    for name, spec in baselines.items():
        if name not in measured:
            failures.append(f"{name}: baselined but not measured")
            continue
        value = float(measured[name])
        ref = float(spec["value"])
        tol = float(spec.get("tolerance", 0.25))
        direction = spec.get("direction", "higher")
        if direction == "higher":
            floor = ref * (1.0 - tol)
            if value < floor:
                failures.append(
                    f"{name}: {value:.3f} < floor {floor:.3f} "
                    f"(baseline {ref:.3f}, tolerance {tol:.0%})"
                )
        else:
            ceiling = ref * (1.0 + tol)
            if value > ceiling:
                failures.append(
                    f"{name}: {value:.3f} > ceiling {ceiling:.3f} "
                    f"(baseline {ref:.3f}, tolerance {tol:.0%})"
                )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if any metric regresses vs benchmarks/baselines.json",
    )
    parser.add_argument(
        "--write-baselines",
        action="store_true",
        help="refresh benchmarks/baselines.json from this run",
    )
    parser.add_argument(
        "--only",
        choices=sorted(BENCHES),
        default=None,
        help="run a single bench",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory for the BENCH_*.json reports",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = [args.only] if args.only else sorted(BENCHES)

    measured: dict[str, float] = {}
    for name in names:
        report = _run_bench(name, quick=args.quick)
        out = out_dir / BENCHES[name]
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[{name}] report written to {out}")
        for metric, value in report["metrics"].items():
            print(f"[{name}]   {metric} = {value:.3f}")
            measured[metric] = value

    if args.write_baselines:
        if BASELINES_PATH.exists():
            baselines = json.loads(BASELINES_PATH.read_text())
        else:
            baselines = {}
        for metric, value in measured.items():
            spec = baselines.get(
                metric, {"direction": "higher", "tolerance": 0.25}
            )
            spec["value"] = round(float(value), 3)
            baselines[metric] = spec
        BASELINES_PATH.write_text(
            json.dumps(baselines, indent=2, sort_keys=True) + "\n"
        )
        print(f"baselines refreshed in {BASELINES_PATH}")

    if args.check:
        if not BASELINES_PATH.exists():
            print("no baselines.json to check against", file=sys.stderr)
            return 2
        baselines = json.loads(BASELINES_PATH.read_text())
        if args.only:
            # partial runs only gate the metrics they measured
            baselines = {
                k: v for k, v in baselines.items() if k in measured
            }
        failures = check_metrics(measured, baselines)
        if failures:
            for message in failures:
                print(f"REGRESSION {message}", file=sys.stderr)
            return 1
        print(f"bench gate passed ({len(baselines)} metric(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

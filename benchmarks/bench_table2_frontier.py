"""Experiment ``table2`` — Table 2: force/energy of frontier solutions.

The paper's Table 2 lists eight frontier solutions with force errors
0.0357–0.0409 eV/Å and energy errors 0.0016–0.0004 eV/atom, ordered by
increasing force (and, by non-domination, decreasing energy).  The
bench regenerates the table and asserts the band and ordering; absolute
values are surrogate-scale but land in the same bands.
"""

import numpy as np

from repro.analysis import format_table, frontier_table


def test_table2_rows(paper_campaign, benchmark):
    table = frontier_table(paper_campaign)
    rows = benchmark(table.rows)
    print()
    print(format_table(rows, title="Table 2 (reproduced)"))

    forces = np.array([r["force error (eV/A)"] for r in rows])
    energies = np.array([r["energy error (eV/atom)"] for r in rows])
    # ordering identical to the paper's table
    assert np.all(np.diff(forces) >= 0)
    assert np.all(np.diff(energies) <= 1e-15)
    # bands: paper force 0.0357-0.0409; energy 0.0004-0.0016
    assert 0.025 < forces.min() < 0.045
    assert forces.max() < 0.06
    assert energies.min() < 0.002
    assert energies.max() < 0.006
    # §3.2: at most the tail of the frontier violates the 0.04 eV/A
    # chemical force threshold — the majority satisfies it
    assert np.mean(forces < 0.045) >= 0.5

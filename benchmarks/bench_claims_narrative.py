"""Experiment ``sec3.2-claims`` — the §3 narrative, quantified.

* ~25 failed trainings, all in early generations, none in the last;
* failed trainings have very short runtimes;
* successful last-generation runtimes all under ~80 minutes;
* MAXINT failure fitnesses keep the sort total (the NaN contrast);
* the campaign needs orders of magnitude fewer evaluations than a
  10-point/parameter grid.
"""

import numpy as np

from repro.evo.individual import MAXINT
from repro.evo.nsga2 import rank_ordinal_sort


def test_failure_narrative(paper_campaign, benchmark):
    failures = benchmark(paper_campaign.failures_by_generation)
    total = sum(failures)
    print()
    print(f"failed trainings by generation: {failures} (total {total})")
    # the paper observed 25 failures in 3500 trainings; same order
    assert 5 <= total <= 100
    # failures concentrate early and vanish by the final generation
    assert sum(failures[:2]) > sum(failures[-2:])
    assert failures[-1] <= 3


def test_failed_runs_have_short_runtimes(paper_campaign, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    failed_runtimes = []
    ok_runtimes = []
    for g in range(7):
        for ind in paper_campaign.generation_evaluated(g):
            rt = ind.metadata.get("runtime_minutes")
            if rt is None:
                continue
            (ok_runtimes if ind.is_viable else failed_runtimes).append(rt)
    print()
    print(
        f"failed-run runtimes: n={len(failed_runtimes)}, "
        f"max={max(failed_runtimes):.1f} min; successful max="
        f"{max(ok_runtimes):.1f} min"
    )
    assert failed_runtimes, "campaign produced no failures to check"
    # "very short runtimes ... corresponding to failed training tasks"
    assert max(failed_runtimes) < 10.0
    assert np.median(ok_runtimes) > 20.0


def test_last_generation_runtimes_under_cap(paper_campaign, benchmark):
    from benchmarks.conftest import once

    runtimes = once(benchmark, paper_campaign.runtimes_last_generation)
    runtimes = runtimes[np.isfinite(runtimes)]
    print()
    print(
        f"last-generation runtimes: max {runtimes.max():.1f} min "
        f"(mean {runtimes.mean():.1f})"
    )
    # "Runtimes for all training runs in the combined last generation
    # solution set are under 80 minutes" (we allow a small band)
    assert runtimes.max() < 90.0
    # and far below the 2-hour kill limit
    assert runtimes.max() < 120.0


def test_maxint_keeps_sorting_total(paper_campaign, benchmark):
    """The design decision of §2.2.4: MAXINT failures sort; NaNs would
    not."""
    pool = paper_campaign.generation_evaluated(0)
    F = np.array([ind.fitness for ind in pool])
    ranks = benchmark(rank_ordinal_sort, F)
    failed = np.all(F >= MAXINT, axis=1)
    if failed.any():
        assert ranks[failed].min() > ranks[~failed].max()
    # the NaN alternative is rejected outright
    F_nan = F.copy()
    F_nan[0] = np.nan
    try:
        rank_ordinal_sort(F_nan)
        raise AssertionError("NaN fitnesses must be rejected")
    except ValueError:
        pass


def test_evaluation_budget_vs_grid(paper_campaign, benchmark):
    from benchmarks.conftest import once

    once(benchmark, lambda: None)
    grid_cost = 10 ** 7  # ten points per parameter, seven parameters
    campaign_cost = paper_campaign.n_trainings
    print()
    print(
        f"campaign evaluations: {campaign_cost}; 10-point grid: "
        f"{grid_cost} ({grid_cost / campaign_cost:.0f}x more)"
    )
    # "orders of magnitude smaller than a brute-force grid search"
    assert grid_cost / campaign_cost > 1000

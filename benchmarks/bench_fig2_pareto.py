"""Experiment ``fig2`` — Fig. 2: the aggregate Pareto frontier.

Benchmarks frontier extraction from the combined last generations of
all five runs and asserts the paper's shape: a small set of
non-dominated points clustered close to the origin with a monotone
energy/force trade-off.
"""

import numpy as np

from repro.analysis import format_table, frontier_table


def test_fig2_frontier(paper_campaign, benchmark):
    table = benchmark(frontier_table, paper_campaign)
    print()
    print(
        format_table(
            table.rows(),
            title=f"Fig. 2 frontier ({len(table)} non-dominated solutions)",
        )
    )
    # paper: 8 points; shape target: a handful, not the whole population
    assert 4 <= len(table) <= 20
    F = table.fitness_matrix()
    # clustered close to the origin (paper: force 0.0357-0.0409 eV/A,
    # energy 0.0004-0.0016 eV/atom)
    assert F[:, 1].min() < 0.045  # best force
    assert F[:, 1].max() < 0.06  # even the worst frontier force is near
    assert F[:, 0].min() < 0.002  # best energy
    assert F[:, 0].max() < 0.006
    # the defining staircase: force up, energy down
    assert table.monotone_tradeoff()


def test_fig2_frontier_members_viable_and_final(paper_campaign, benchmark):
    from benchmarks.conftest import once

    table = once(benchmark, frontier_table, paper_campaign)
    final_ids = {
        id(ind) for ind in paper_campaign.last_generation_individuals()
    }
    for member in table.members:
        assert member.is_viable
        assert id(member) in final_ids

"""Benchmark harness: one module per table/figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module both
*measures* the relevant computation (pytest-benchmark) and *asserts*
the paper's qualitative result (who wins, thresholds, failure shapes),
printing the reproduced rows.
"""

"""Extension bench — mutation-only (paper) vs mutation+crossover.

Listing 1 breeds by clone+Gaussian-mutation only; canonical NSGA-II
uses SBX crossover plus mutation.  The bench runs both pipelines at
equal budget on the surrogate landscape and reports whether the
paper's simpler operator set left anything on the table for this
7-gene problem.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.evo import ops
from repro.evo.crossover import sbx_crossover
from repro.evo.individual import RobustIndividual
from repro.evo.nsga2 import crowding_distance_calc, rank_ordinal_sort_op
from repro.evo.annealing import AnnealingSchedule
from repro.hpo import NSGA2Settings, SurrogateDeepMDProblem, run_deepmd_nsga2
from repro.hpo.representation import DeepMDRepresentation
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d
from repro.rng import ensure_rng

REFERENCE = (0.02, 0.2)
POP = 60
GENERATIONS = 6


def _hv(population) -> float:
    F = np.array([i.fitness for i in population if i.is_viable])
    if len(F) == 0:
        return 0.0
    return hypervolume_2d(F[non_dominated_mask(F)], REFERENCE)


def _run_with_crossover(seed: int) -> float:
    problem = SurrogateDeepMDProblem(seed=seed)
    rep = DeepMDRepresentation
    gen_rng = ensure_rng(seed)
    schedule = AnnealingSchedule(rep.mutation_std, factor=0.85)
    parents = []
    for _ in range(POP):
        genome = gen_rng.uniform(
            rep.init_ranges[:, 0], rep.init_ranges[:, 1]
        )
        ind = RobustIndividual(
            genome, decoder=rep.decoder(), problem=problem
        )
        ind.n_objectives = 2
        parents.append(ind.evaluate())
    for _ in range(GENERATIONS):
        offspring = ops.pipe(
            parents,
            lambda pop: ops.random_selection(pop, rng=gen_rng),
            ops.clone,
            sbx_crossover(eta=15.0, rng=gen_rng),
            ops.mutate_gaussian(
                std=schedule.current,
                hard_bounds=rep.bounds,
                rng=gen_rng,
            ),
            ops.eval_pool(client=None, size=POP),
        )
        combined = rank_ordinal_sort_op(parents=parents)(offspring)
        crowded = crowding_distance_calc(combined)
        parents = ops.truncation_selection(
            size=POP, key=lambda x: (-x.rank, x.distance)
        )(crowded)
        schedule.step()
    return _hv(parents)


def _run_mutation_only(seed: int) -> float:
    records = run_deepmd_nsga2(
        SurrogateDeepMDProblem(seed=seed),
        settings=NSGA2Settings(pop_size=POP, generations=GENERATIONS),
        rng=seed,
    )
    return _hv(records[-1].population)


def test_crossover_ablation(benchmark):
    once(benchmark, lambda: None)
    seeds = [0, 1, 2, 3]
    mutation_only = [_run_mutation_only(s) for s in seeds]
    with_sbx = [_run_with_crossover(s) for s in seeds]
    rows = [
        {
            "pipeline": "clone + Gaussian mutation (paper, Listing 1)",
            "mean hypervolume": float(np.mean(mutation_only)),
        },
        {
            "pipeline": "SBX crossover + Gaussian mutation",
            "mean hypervolume": float(np.mean(with_sbx)),
        },
    ]
    print()
    print(format_table(rows, title="crossover ablation (4 seeds)"))
    # the paper's mutation-only choice is adequate on this landscape:
    # crossover does not beat it by a wide margin
    assert np.mean(mutation_only) > 0.8 * np.mean(with_sbx)


def test_sbx_pipeline_speed(benchmark):
    hv = benchmark.pedantic(
        _run_with_crossover, args=(0,), rounds=1, iterations=1
    )
    assert hv > 0.0

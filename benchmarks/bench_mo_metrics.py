"""Experiment ``perf-mo`` — N-D hypervolume kernels and surrogate
sample efficiency.

Two families of numbers:

* **kernel throughput** — points/second of the exact 2-D sweep, the
  exact 3-D slicing algorithm, and the deterministic Monte-Carlo
  fallback on campaign-sized fronts (informational: absolute rates);
* **surrogate sample efficiency** — fresh evaluations each optimizer
  needs to reach a target hypervolume on the seeded surrogate DeePMD
  landscape, reported as the ratio ``random / surrogate`` (a
  same-machine, same-seed *deterministic* ratio — the CI-gated claim
  that the RBF acquisition beats random search per training).

Run standalone (``python benchmarks/bench_mo_metrics.py``) or via
``benchmarks/runner.py``, which writes ``BENCH_mo.json`` and gates CI
on the sample-efficiency ratio.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np


def _front_3d(n: int, seed: int = 0) -> np.ndarray:
    """A nondominated-ish 3-D cloud inside the default reference box."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.001, 0.019, size=n)
    y = rng.uniform(0.01, 0.19, size=n)
    z = rng.uniform(20.0, 230.0, size=n)
    return np.column_stack([x, y, z])


def _time_s(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _evals_to_target(records, target_hv, reference) -> int:
    """Fresh evaluations consumed up to the first generation whose
    selected front dominates ``target_hv`` (budget+1 when never)."""
    from repro.mo.dominance import non_dominated_mask
    from repro.mo.metrics import hypervolume

    spent = 0
    for record in records:
        spent += len(record.evaluated)
        F = np.asarray(
            [ind.fitness for ind in record.population if ind.is_viable]
        )
        if not len(F):
            continue
        F = F[np.all(np.isfinite(F), axis=1)]
        if not len(F):
            continue
        if hypervolume(F[non_dominated_mask(F)], reference) >= target_hv:
            return spent
    return spent + 1


def run(quick: bool = False) -> dict:
    """Execute the bench; returns the machine-readable report dict."""
    from repro.evo.surrogate import surrogate_assisted_search
    from repro.hpo.driver import NSGA2Settings, run_deepmd_surrogate
    from repro.hpo.landscape import SurrogateDeepMDProblem
    from repro.hpo.representation import DeepMDRepresentation
    from repro.mo.metrics import hypervolume

    # ------------------------------------------------------------------
    # kernel throughput
    # ------------------------------------------------------------------
    n = 300 if quick else 1000
    repeats = 3 if quick else 7
    F3 = _front_3d(n)
    F2 = F3[:, :2]
    ref2 = (0.02, 0.2)
    ref3 = (0.02, 0.2, 240.0)

    t_2d = _time_s(lambda: hypervolume(F2, ref2), repeats)
    t_3d = _time_s(lambda: hypervolume(F3, ref3), repeats)
    # the d>3 Monte-Carlo path, forced via a 4-D embedding
    F4 = np.column_stack([F3, np.full(len(F3), 0.5)])
    ref4 = ref3 + (1.0,)
    t_mc = _time_s(
        lambda: hypervolume(F4, ref4, n_samples=5000, seed=2023), repeats
    )

    # ------------------------------------------------------------------
    # surrogate sample efficiency vs random search (deterministic)
    # ------------------------------------------------------------------
    # pop must clear the surrogate's fit gate (2 × 7 genes viable
    # points) after generation 0, so the acquisition is active from the
    # first proposal batch in quick mode too
    pop = 16
    iters = 3 if quick else 6
    seed = 7
    rep = DeepMDRepresentation

    surrogate_records = run_deepmd_surrogate(
        SurrogateDeepMDProblem(seed=seed),
        settings=NSGA2Settings(pop_size=pop, generations=iters),
        rng=seed,
    )
    # random search = the same driver with a pure-exploration pool and
    # the surrogate fit disabled by construction (picks the first
    # pop_size uniform candidates each iteration)
    random_records = surrogate_assisted_search(
        SurrogateDeepMDProblem(seed=seed),
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=pop,
        iterations=iters,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        explore_fraction=1.0,
        pool_multiplier=1,
        rng=seed,
    )
    ref = ref2
    # target: 90% of the hypervolume the weaker run ends at, so both
    # runs can reach it and the ratio measures how fast they get there
    def final_hv(records):
        from repro.mo.dominance import non_dominated_mask

        F = np.asarray(
            [
                ind.fitness
                for ind in records[-1].population
                if ind.is_viable
            ]
        )
        F = F[np.all(np.isfinite(F), axis=1)]
        return hypervolume(F[non_dominated_mask(F)], ref)

    # target: just under the hypervolume the *weaker* run ends at, so
    # both runs reach it and the ratio measures how fast they got there
    target = 0.995 * min(
        final_hv(surrogate_records), final_hv(random_records)
    )
    surrogate_evals = _evals_to_target(surrogate_records, target, ref)
    random_evals = _evals_to_target(random_records, target, ref)

    return {
        "bench": "mo_metrics",
        "quick": quick,
        "n_points": n,
        "results": {
            "hypervolume": {
                "exact_2d_kpts_per_s": n / t_2d / 1e3,
                "exact_3d_kpts_per_s": n / t_3d / 1e3,
                "monte_carlo_4d_kpts_per_s": n / t_mc / 1e3,
            },
            "sample_efficiency": {
                "target_hypervolume": target,
                "surrogate_evals_to_target": surrogate_evals,
                "random_evals_to_target": random_evals,
            },
        },
        "metrics": {
            "hv_exact_3d_kpts_per_s": n / t_3d / 1e3,
            "surrogate_evals_to_target_ratio": (
                random_evals / surrogate_evals
            ),
        },
    }


def main(argv: Optional[list] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_mo.json")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    hv = report["results"]["hypervolume"]
    for name, value in hv.items():
        print(f"{name}: {value:.1f} kpts/s")
    se = report["results"]["sample_efficiency"]
    print(
        f"evals to target HV {se['target_hypervolume']:.4f}: "
        f"surrogate {se['surrogate_evals_to_target']} vs random "
        f"{se['random_evals_to_target']}"
    )
    for name, value in report["metrics"].items():
        print(f"{name}: {value:.3f}")
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

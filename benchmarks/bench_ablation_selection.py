"""Extension bench — random parents (paper) vs crowded tournament.

Listing 1 selects parents uniformly at random; canonical NSGA-II uses
binary tournaments under the crowded-comparison operator for mating
selection.  With mu+lambda truncation already supplying strong
survivor-selection pressure, does the paper's simplification cost
anything?  The bench runs both at equal budget across seeds.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.evo import ops
from repro.evo.annealing import AnnealingSchedule
from repro.evo.individual import RobustIndividual
from repro.evo.nsga2 import (
    crowded_tournament_selection,
    crowding_distance_calc,
    rank_ordinal_sort_op,
)
from repro.hpo import NSGA2Settings, SurrogateDeepMDProblem, run_deepmd_nsga2
from repro.hpo.representation import DeepMDRepresentation
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d
from repro.rng import ensure_rng

REFERENCE = (0.02, 0.2)
POP = 60
GENERATIONS = 6


def _hv(population) -> float:
    F = np.array([i.fitness for i in population if i.is_viable])
    if len(F) == 0:
        return 0.0
    return hypervolume_2d(F[non_dominated_mask(F)], REFERENCE)


def _run_tournament(seed: int) -> float:
    problem = SurrogateDeepMDProblem(seed=seed)
    rep = DeepMDRepresentation
    gen_rng = ensure_rng(seed)
    schedule = AnnealingSchedule(rep.mutation_std, factor=0.85)
    parents = []
    for _ in range(POP):
        genome = gen_rng.uniform(
            rep.init_ranges[:, 0], rep.init_ranges[:, 1]
        )
        ind = RobustIndividual(
            genome, decoder=rep.decoder(), problem=problem
        )
        ind.n_objectives = 2
        parents.append(ind.evaluate())
    # initial pool needs ranks/distances before the first tournament
    parents = crowding_distance_calc(rank_ordinal_sort_op()(parents))
    for _ in range(GENERATIONS):
        offspring = ops.pipe(
            parents,
            lambda pop: crowded_tournament_selection(pop, rng=gen_rng),
            ops.clone,
            ops.mutate_gaussian(
                std=schedule.current,
                hard_bounds=rep.bounds,
                rng=gen_rng,
            ),
            ops.eval_pool(client=None, size=POP),
        )
        combined = rank_ordinal_sort_op(parents=parents)(offspring)
        crowded = crowding_distance_calc(combined)
        parents = ops.truncation_selection(
            size=POP, key=lambda x: (-x.rank, x.distance)
        )(crowded)
        schedule.step()
    return _hv(parents)


def _run_random(seed: int) -> float:
    records = run_deepmd_nsga2(
        SurrogateDeepMDProblem(seed=seed),
        settings=NSGA2Settings(pop_size=POP, generations=GENERATIONS),
        rng=seed,
    )
    return _hv(records[-1].population)


def test_selection_ablation(benchmark):
    once(benchmark, lambda: None)
    seeds = [0, 1, 2, 3]
    random_sel = [_run_random(s) for s in seeds]
    tournament = [_run_tournament(s) for s in seeds]
    rows = [
        {
            "mating selection": "uniform random (paper, Listing 1)",
            "mean hypervolume": float(np.mean(random_sel)),
        },
        {
            "mating selection": "crowded binary tournament (canonical)",
            "mean hypervolume": float(np.mean(tournament)),
        },
    ]
    print()
    print(format_table(rows, title="mating-selection ablation (4 seeds)"))
    # mu+lambda truncation already provides the pressure: random mating
    # selection is competitive (within 15 %)
    assert np.mean(random_sel) > 0.85 * np.mean(tournament)


def test_tournament_pipeline_speed(benchmark):
    hv = benchmark.pedantic(
        _run_tournament, args=(0,), rounds=1, iterations=1
    )
    assert hv > 0.0

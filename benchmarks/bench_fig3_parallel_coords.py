"""Experiment ``fig3`` — Fig. 3: parallel coordinates of the final
solution set with chemical-accuracy coloring.

Regenerates the per-solution rows (seven hyperparameters + runtime +
losses + frontier membership + accuracy flag) and asserts the
hyperparameter findings the paper reads off the figure.
"""

import numpy as np

from repro.analysis import format_table, parallel_coordinates


def test_fig3_rows(paper_campaign, benchmark):
    data = benchmark(parallel_coordinates, paper_campaign)
    accurate = data.accurate_rows()
    print()
    print(
        f"final solutions: {len(data)}; chemically accurate: "
        f"{len(accurate)}"
    )
    sample = [
        {
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in row.items()
        }
        for row in data.rows[:5]
    ]
    print(format_table(sample, title="Fig. 3 rows (first five)"))

    assert len(data) == 500  # 5 runs x 100 final individuals (viable)
    assert len(accurate) > 0

    # §3.2: "no accurate solution having an rcut below 8.5 Å"
    min_rcut = min(r["rcut"] for r in accurate)
    print(f"minimum rcut among accurate solutions: {min_rcut:.2f} A")
    assert min_rcut > 7.5

    # accurate solutions' smoothing radius is densest below 4.5 Å
    smths = np.array([r["rcut_smth"] for r in accurate])
    assert np.mean(smths < 4.5) > 0.5

    # stop_lr of accurate solutions all above 1e-5 (paper finding)
    stops = np.array([r["stop_lr"] for r in accurate])
    assert np.all(stops > 1e-6)
    assert np.median(stops) > 1e-5


def test_fig3_activation_findings(paper_campaign, benchmark):
    from benchmarks.conftest import once

    data = once(benchmark, parallel_coordinates, paper_campaign)
    accurate_fit = data.categorical_counts(
        "fitting_activ_func", accurate_only=True
    )
    accurate_desc = data.categorical_counts(
        "desc_activ_func", accurate_only=True
    )
    all_fit = data.categorical_counts("fitting_activ_func")
    print()
    print(f"fitting activations (all final): {all_fit}")
    print(f"fitting activations (accurate): {accurate_fit}")
    print(f"descriptor activations (accurate): {accurate_desc}")

    # "both relu activation functions for the fitting network have
    # dropped out completely from the final solution"
    assert accurate_fit.get("relu", 0) == 0
    assert accurate_fit.get("relu6", 0) == 0
    # "the sigmoid activation function for the descriptor network is
    # not included in any chemically accurate solutions"
    assert accurate_desc.get("sigmoid", 0) == 0
    # softplus/tanh survive for both networks
    assert accurate_fit.get("tanh", 0) + accurate_fit.get("softplus", 0) > 0
    assert accurate_desc.get("tanh", 0) + accurate_desc.get("softplus", 0) > 0


def test_fig3_worker_scaling_findings(paper_campaign, benchmark):
    from benchmarks.conftest import once

    data = once(benchmark, parallel_coordinates, paper_campaign)
    counts = data.categorical_counts(
        "scale_by_worker", accurate_only=True
    )
    print()
    print(f"worker scaling among accurate solutions: {counts}")
    # "scaling by the square root of the number of workers and no
    # scaling at all can provide excellent training results, and in
    # fact, more chemically accurate solutions are obtained this way"
    non_linear = counts.get("none", 0) + counts.get("sqrt", 0)
    assert non_linear > counts.get("linear", 0)

"""Observability overhead: the null tracer must be free.

The scheduler, workers, and client call the tracer on every task
transition, so instrumentation is only acceptable if the disabled
(default, :class:`~repro.obs.trace.NullTracer`) path costs a
negligible fraction of a task's scheduling overhead.  Two measures:

* the isolated cost of the per-task obs call sequence (the exact
  calls the scheduler + worker make for one task) against the cost of
  a full submit/gather round-trip — asserted below 5%;
* the end-to-end submit/gather microbenchmark itself, with the null
  tracer vs. an active file-backed tracer, to show what enabling
  capture costs;
* the pool-backend path with the *entire live plane on* (file-backed
  tracer with cross-process span ingestion, campaign status, and the
  /metrics + /status HTTP server running) vs. fully off — the
  ``pool_obs_overhead_ratio`` metric the CI bench-gate holds below
  baseline × tolerance (budget: < 5% overhead on a dispatch-bound
  wave).

Run standalone (``python benchmarks/bench_obs_overhead.py``) or via
``benchmarks/runner.py``, which writes ``BENCH_obs.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import once
from repro.distributed import LocalCluster
from repro.obs import MetricsRegistry, Tracer
from repro.obs.trace import NULL_TRACER

N_TASKS = 200


def _submit_gather(cluster: LocalCluster, n_tasks: int = N_TASKS) -> None:
    client = cluster.client()
    client.gather(client.map(lambda x: x, range(n_tasks)), timeout=60)


def _null_obs_calls_per_task(registry: MetricsRegistry, n: int) -> None:
    """The obs work one task costs on the disabled path.

    With the tracer disabled the scheduler/worker per-task telemetry
    (timeline marks, events, spans, histograms, the busy gauge) is
    gated behind one cached ``enabled`` flag, so what remains per task
    is three counter ticks (submitted, completed, worker-executed)
    plus the flag checks themselves.
    """
    obs = bool(getattr(NULL_TRACER, "enabled", False))
    c_submitted = registry.counter("scheduler_tasks_submitted_total")
    c_completed = registry.counter("scheduler_tasks_completed_total")
    c_executed = registry.counter("worker_tasks_executed_total")
    for i in range(n):
        c_submitted.inc()  # submit()
        if obs:  # pragma: no cover - disabled path under test
            raise AssertionError("null tracer must report enabled=False")
        if obs:  # next_task(): queue-wait mark + observe
            pass
        if obs:  # worker: busy gauge + worker.task span
            pass
        c_completed.inc()  # task_done()
        if obs:  # task_done(): run-time observe + task.done event
            pass
        c_executed.inc()  # worker finally-block
        if obs:  # worker finally-block: busy gauge dec
            pass


def test_scheduler_submit_gather_null_tracer(benchmark):
    """The baseline everything is measured against: submit/gather with
    instrumentation present but disabled (the default)."""
    with LocalCluster(n_workers=2) as cluster:
        benchmark.pedantic(
            _submit_gather, args=(cluster,), rounds=3, iterations=1
        )


def test_scheduler_submit_gather_active_tracer(benchmark, tmp_path):
    """The same wave with a file-backed tracer capturing every span."""
    tracer = Tracer(tmp_path / "trace.jsonl", keep_in_memory=False)
    with LocalCluster(n_workers=2, tracer=tracer) as cluster:
        benchmark.pedantic(
            _submit_gather, args=(cluster,), rounds=3, iterations=1
        )
    tracer.close()


def test_null_tracer_overhead_below_5_percent(benchmark):
    """The per-task null-tracer + registry call sequence costs < 5% of
    a scheduler submit/gather round-trip."""
    once(benchmark, lambda: None)

    # time the scheduler wave (which already includes the obs calls)
    with LocalCluster(n_workers=2) as cluster:
        _submit_gather(cluster)  # warm-up
        t0 = time.perf_counter()
        _submit_gather(cluster)
        scheduler_s = time.perf_counter() - t0

    # time the obs call sequence alone, amortized over many repeats
    registry = MetricsRegistry()
    _null_obs_calls_per_task(registry, N_TASKS)  # warm-up
    repeats = 20
    t0 = time.perf_counter()
    for _ in range(repeats):
        _null_obs_calls_per_task(registry, N_TASKS)
    obs_s = (time.perf_counter() - t0) / repeats

    ratio = obs_s / scheduler_s
    print()
    print(
        f"{N_TASKS}-task wave: scheduler {scheduler_s * 1e3:.2f} ms, "
        f"disabled-obs calls {obs_s * 1e3:.3f} ms "
        f"({100 * ratio:.2f}% of the round-trip)"
    )
    assert ratio < 0.05, (
        f"null-tracer obs path costs {100 * ratio:.1f}% of a "
        f"submit/gather wave (budget: 5%)"
    )


# ----------------------------------------------------------------------
# machine-readable bench: pool backend with the live plane on vs. off
# ----------------------------------------------------------------------
def _pool_wave_seconds(
    obs: bool, duration: float, n_tasks: int, rounds: int
) -> float:
    """Best-of-``rounds`` wall time of one pool-backend engine batch.

    ``obs=True`` turns the whole plane on: a file-backed tracer (so
    every worker span crosses the pipe and is ingested), a campaign
    status the pool publishes worker liveness into, and a running
    ObservabilityServer — the exact configuration of
    ``repro-hpo run --backend pool --trace ... --serve-metrics``.
    """
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from benchmarks.bench_engine_throughput import (
        SleepProblem,
        _individuals,
    )
    from repro.engine import EvaluationEngine, ProcessPoolBackend
    from repro.obs import (
        CampaignStatus,
        ObservabilityServer,
        use_status,
        use_tracer,
    )

    problem = SleepProblem(duration=duration)
    with ExitStack() as stack:
        registry = MetricsRegistry()
        if obs:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
            tracer = Tracer(
                Path(tmp) / "trace.jsonl", keep_in_memory=True
            )
            stack.callback(tracer.close)
            stack.enter_context(use_tracer(tracer))
            status = CampaignStatus(campaign_id=tracer.campaign_id)
            stack.enter_context(use_status(status))
            server = ObservabilityServer(
                port=0, registry=registry, status=status, tracer=tracer
            )
            server.start()
            stack.callback(server.close)
        # the pool binds the process-wide tracer/status at construction,
        # so it must be built inside the scopes above
        pool = stack.enter_context(
            ProcessPoolBackend(workers=2, metrics=registry)
        )
        engine = EvaluationEngine(
            client=pool, metrics=registry, fault_injector=None
        )
        engine.evaluate(_individuals(problem, 2))  # warm-up
        best = float("inf")
        for _ in range(rounds):
            batch = _individuals(problem, n_tasks)
            t0 = time.perf_counter()
            engine.evaluate(batch)
            best = min(best, time.perf_counter() - t0)
        if obs:
            # the measurement only counts if the plane actually ran:
            # worker spans crossed the pipe and the endpoint is live
            n_worker_spans = len(
                [
                    r
                    for r in tracer.records
                    if r.get("type") == "span"
                    and r.get("name") == "worker.task"
                ]
            )
            assert n_worker_spans >= n_tasks, (
                f"expected >= {n_tasks} ingested worker spans, "
                f"got {n_worker_spans}"
            )
        return best


def run(quick: bool = False) -> dict:
    """Execute the bench; returns the machine-readable report dict."""
    duration = 0.01 if quick else 0.02
    n_tasks = 32 if quick else 96
    rounds = 2 if quick else 3
    off_s = _pool_wave_seconds(False, duration, n_tasks, rounds)
    on_s = _pool_wave_seconds(True, duration, n_tasks, rounds)
    ratio = on_s / off_s
    return {
        "bench": "obs_overhead",
        "quick": quick,
        "task_duration_s": duration,
        "n_tasks": n_tasks,
        "results": {
            "pool_plane_off": {"wall_s": off_s},
            "pool_plane_on": {"wall_s": on_s},
        },
        # same-machine ratio: what the full live plane (tracer +
        # status + HTTP server) costs on a pool-backend wave
        "metrics": {"pool_obs_overhead_ratio": ratio},
    }


def main(argv: list | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    off = report["results"]["pool_plane_off"]["wall_s"]
    on = report["results"]["pool_plane_on"]["wall_s"]
    ratio = report["metrics"]["pool_obs_overhead_ratio"]
    print(
        f"pool wave: plane off {off * 1e3:.1f} ms, "
        f"plane on {on * 1e3:.1f} ms  (ratio {ratio:.3f})"
    )
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Observability overhead: the null tracer must be free.

The scheduler, workers, and client call the tracer on every task
transition, so instrumentation is only acceptable if the disabled
(default, :class:`~repro.obs.trace.NullTracer`) path costs a
negligible fraction of a task's scheduling overhead.  Two measures:

* the isolated cost of the per-task obs call sequence (the exact
  calls the scheduler + worker make for one task) against the cost of
  a full submit/gather round-trip — asserted below 5%;
* the end-to-end submit/gather microbenchmark itself, with the null
  tracer vs. an active file-backed tracer, to show what enabling
  capture costs.
"""

from __future__ import annotations

import time

from benchmarks.conftest import once
from repro.distributed import LocalCluster
from repro.obs import MetricsRegistry, Tracer
from repro.obs.trace import NULL_TRACER

N_TASKS = 200


def _submit_gather(cluster: LocalCluster, n_tasks: int = N_TASKS) -> None:
    client = cluster.client()
    client.gather(client.map(lambda x: x, range(n_tasks)), timeout=60)


def _null_obs_calls_per_task(registry: MetricsRegistry, n: int) -> None:
    """The obs work one task costs on the disabled path.

    With the tracer disabled the scheduler/worker per-task telemetry
    (timeline marks, events, spans, histograms, the busy gauge) is
    gated behind one cached ``enabled`` flag, so what remains per task
    is three counter ticks (submitted, completed, worker-executed)
    plus the flag checks themselves.
    """
    obs = bool(getattr(NULL_TRACER, "enabled", False))
    c_submitted = registry.counter("scheduler_tasks_submitted_total")
    c_completed = registry.counter("scheduler_tasks_completed_total")
    c_executed = registry.counter("worker_tasks_executed_total")
    for i in range(n):
        c_submitted.inc()  # submit()
        if obs:  # pragma: no cover - disabled path under test
            raise AssertionError("null tracer must report enabled=False")
        if obs:  # next_task(): queue-wait mark + observe
            pass
        if obs:  # worker: busy gauge + worker.task span
            pass
        c_completed.inc()  # task_done()
        if obs:  # task_done(): run-time observe + task.done event
            pass
        c_executed.inc()  # worker finally-block
        if obs:  # worker finally-block: busy gauge dec
            pass


def test_scheduler_submit_gather_null_tracer(benchmark):
    """The baseline everything is measured against: submit/gather with
    instrumentation present but disabled (the default)."""
    with LocalCluster(n_workers=2) as cluster:
        benchmark.pedantic(
            _submit_gather, args=(cluster,), rounds=3, iterations=1
        )


def test_scheduler_submit_gather_active_tracer(benchmark, tmp_path):
    """The same wave with a file-backed tracer capturing every span."""
    tracer = Tracer(tmp_path / "trace.jsonl", keep_in_memory=False)
    with LocalCluster(n_workers=2, tracer=tracer) as cluster:
        benchmark.pedantic(
            _submit_gather, args=(cluster,), rounds=3, iterations=1
        )
    tracer.close()


def test_null_tracer_overhead_below_5_percent(benchmark):
    """The per-task null-tracer + registry call sequence costs < 5% of
    a scheduler submit/gather round-trip."""
    once(benchmark, lambda: None)

    # time the scheduler wave (which already includes the obs calls)
    with LocalCluster(n_workers=2) as cluster:
        _submit_gather(cluster)  # warm-up
        t0 = time.perf_counter()
        _submit_gather(cluster)
        scheduler_s = time.perf_counter() - t0

    # time the obs call sequence alone, amortized over many repeats
    registry = MetricsRegistry()
    _null_obs_calls_per_task(registry, N_TASKS)  # warm-up
    repeats = 20
    t0 = time.perf_counter()
    for _ in range(repeats):
        _null_obs_calls_per_task(registry, N_TASKS)
    obs_s = (time.perf_counter() - t0) / repeats

    ratio = obs_s / scheduler_s
    print()
    print(
        f"{N_TASKS}-task wave: scheduler {scheduler_s * 1e3:.2f} ms, "
        f"disabled-obs calls {obs_s * 1e3:.3f} ms "
        f"({100 * ratio:.2f}% of the round-trip)"
    )
    assert ratio < 0.05, (
        f"null-tracer obs path costs {100 * ratio:.1f}% of a "
        f"submit/gather wave (budget: 5%)"
    )

"""Experiment ``perf-sort`` — the §2.1.4 sorting ablation.

"We used an improved version of ranked-based sorting that yielded a
significant speed-up for NSGA-II" (Burlacu 2022).  The bench measures
the classic Deb fast non-dominated sort against the rank-ordinal sort
on two-objective populations at NSGA-II pool sizes (the algorithm
sorts 2 × pop individuals each generation) and verifies the speed-up
while the ranks stay identical.
"""

import numpy as np
import pytest

from repro.evo.nsga2 import fast_nondominated_sort, rank_ordinal_sort


def _population(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # correlated two-objective cloud like the energy/force losses
    base = rng.lognormal(mean=-3.0, sigma=0.8, size=n)
    energy = base * rng.lognormal(0.0, 0.3, size=n) * 0.05
    force = base * rng.lognormal(0.0, 0.3, size=n)
    return np.column_stack([energy, force])


@pytest.mark.parametrize("n", [200, 1000, 4000])
def test_fast_nondominated_sort_speed(benchmark, n):
    F = _population(n)
    ranks = benchmark(fast_nondominated_sort, F)
    assert ranks.min() == 1


@pytest.mark.parametrize("n", [200, 1000, 4000])
def test_rank_ordinal_sort_speed(benchmark, n):
    F = _population(n)
    ranks = benchmark(rank_ordinal_sort, F)
    assert ranks.min() == 1


def test_rank_ordinal_is_faster_at_scale_and_identical(benchmark):
    """The ablation's conclusion in one assertion: same ranks, less
    time, with the gap growing in population size."""
    import time

    n = 4000
    F = _population(n)

    def both():
        t0 = time.perf_counter()
        r_fast = fast_nondominated_sort(F)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        r_rank = rank_ordinal_sort(F)
        t_rank = time.perf_counter() - t0
        return r_fast, r_rank, t_fast, t_rank

    r_fast, r_rank, t_fast, t_rank = benchmark.pedantic(
        both, rounds=3, iterations=1
    )
    print()
    print(
        f"N={n}: classic {t_fast * 1e3:.1f} ms, rank-ordinal "
        f"{t_rank * 1e3:.1f} ms ({t_fast / t_rank:.1f}x speed-up)"
    )
    assert np.array_equal(r_fast, r_rank)
    assert t_rank < t_fast

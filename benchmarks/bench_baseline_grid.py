"""Experiment ``baseline-grid`` — EA vs grid / random / weighted-sum.

The paper motivates NSGA-II against a 10-point-per-parameter grid
(10^7 evaluations) and against single-objective formulations.  The
bench gives all strategies the *same* evaluation budget as one EA
deployment (700) and compares the quality of the non-dominated sets
they find; the grid's full factorial cost is also asserted.
"""

import numpy as np

from repro.analysis import format_table
from repro.hpo import (
    NSGA2Settings,
    SurrogateDeepMDProblem,
    grid_search,
    random_search,
    run_deepmd_nsga2,
    weighted_sum_ea,
)
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import hypervolume_2d

BUDGET = 700  # one deployment: 100 individuals x 7 generations
REFERENCE = (0.02, 0.2)  # hypervolume reference in (energy, force)


def _front_quality(individuals) -> tuple[float, float, int]:
    # weighted-sum individuals carry the underlying two objectives in
    # metadata; multiobjective ones carry them as the fitness itself
    viable = np.array(
        [
            ind.metadata.get("objectives", ind.fitness)
            for ind in individuals
            if ind.is_viable
        ]
    )
    if len(viable) == 0:
        return 0.0, np.inf, 0
    front = viable[non_dominated_mask(viable)]
    hv = hypervolume_2d(front, REFERENCE)
    return hv, float(front[:, 1].min()), len(front)


def test_nsga2_deployment(benchmark):
    records = benchmark.pedantic(
        run_deepmd_nsga2,
        args=(SurrogateDeepMDProblem(seed=0),),
        kwargs={
            "settings": NSGA2Settings(pop_size=100, generations=6),
            "rng": 0,
        },
        rounds=1,
        iterations=1,
    )
    hv, best_force, n = _front_quality(records[-1].population)
    assert hv > 0.0


def test_grid_search_budgeted(benchmark):
    result = benchmark.pedantic(
        grid_search,
        args=(SurrogateDeepMDProblem(seed=0),),
        kwargs={"points_per_gene": 10, "budget": BUDGET, "rng": 0},
        rounds=1,
        iterations=1,
    )
    assert result.evaluations == BUDGET


def test_random_search_budgeted(benchmark):
    result = benchmark.pedantic(
        random_search,
        args=(SurrogateDeepMDProblem(seed=0), BUDGET),
        kwargs={"rng": 0},
        rounds=1,
        iterations=1,
    )
    assert result.evaluations == BUDGET


def test_comparison_table_and_claims(benchmark):
    from benchmarks.conftest import once

    problem_seed = 0
    records = once(
        benchmark,
        run_deepmd_nsga2,
        SurrogateDeepMDProblem(seed=problem_seed),
        settings=NSGA2Settings(pop_size=100, generations=6),
        rng=0,
    )
    ea_hv, ea_force, ea_front = _front_quality(records[-1].population)

    grid = grid_search(
        SurrogateDeepMDProblem(seed=problem_seed),
        points_per_gene=10,
        budget=BUDGET,
        rng=0,
    )
    grid_hv, grid_force, grid_front = _front_quality(grid.evaluated)

    rand = random_search(
        SurrogateDeepMDProblem(seed=problem_seed), BUDGET, rng=0
    )
    rand_hv, rand_force, rand_front = _front_quality(rand.evaluated)

    ws = weighted_sum_ea(
        SurrogateDeepMDProblem(seed=problem_seed),
        pop_size=100,
        generations=6,
        rng=0,
    )
    ws_hv, ws_force, ws_front = _front_quality(ws.evaluated)

    rows = [
        {"strategy": "NSGA-II", "evals": BUDGET, "hypervolume": ea_hv,
         "best force": ea_force, "front size": ea_front},
        {"strategy": "grid (budgeted)", "evals": BUDGET,
         "hypervolume": grid_hv, "best force": grid_force,
         "front size": grid_front},
        {"strategy": "random search", "evals": BUDGET,
         "hypervolume": rand_hv, "best force": rand_force,
         "front size": rand_front},
        {"strategy": "weighted-sum EA", "evals": BUDGET,
         "hypervolume": ws_hv, "best force": ws_force,
         "front size": ws_front},
    ]
    print()
    print(format_table(rows, title="search strategies at equal budget"))

    # who wins: the EA beats the grid outright (the paper's comparison)
    assert ea_hv > grid_hv
    assert ea_force <= grid_force
    # random search finds isolated good points (Bergstra & Bengio) and
    # is therefore competitive on frontier hypervolume — but the EA
    # *concentrates* its budget: the median final solution is far
    # better than the median random sample
    assert ea_hv > 0.9 * rand_hv
    ea_median = np.median(
        [i.fitness[1] for i in records[-1].population if i.is_viable]
    )
    rand_median = np.median(
        [i.fitness[1] for i in rand.evaluated if i.is_viable]
    )
    print(
        f"median force: NSGA-II {ea_median:.4f} vs random "
        f"{rand_median:.4f} eV/A"
    )
    assert ea_median < 0.75 * rand_median
    # the full grid would need 10^7 evaluations — four orders beyond
    full_grid = 10 ** 7
    assert full_grid / BUDGET > 10_000

"""Experiment ``table1`` — Table 1: the seven-gene representation.

Regenerates the initialization ranges and mutation standard deviations
and measures genome decoding throughput (the decode happens once per
fitness evaluation, §2.2.2).
"""

import numpy as np

from repro.analysis import format_table
from repro.hpo.representation import DeepMDRepresentation, GENE_NAMES


def test_table1_rows(benchmark):
    rows = benchmark(DeepMDRepresentation.table1)
    print()
    print(
        format_table(
            [
                {
                    "hyperparameter": r["hyperparameter"],
                    "initialization range": str(r["initialization range"]),
                    "mutation std": r["mutation standard deviation"],
                }
                for r in rows
            ],
            title="Table 1 (reproduced)",
        )
    )
    # exact Table 1 values
    by_name = {r["hyperparameter"]: r for r in rows}
    assert by_name["start_lr"]["initialization range"] == (3.51e-8, 0.01)
    assert by_name["stop_lr"]["initialization range"] == (3.51e-8, 0.0001)
    assert by_name["rcut"]["initialization range"] == (6.0, 12.0)
    assert by_name["rcut_smth"]["initialization range"] == (2.0, 6.0)
    assert by_name["start_lr"]["mutation standard deviation"] == 0.001
    assert by_name["rcut"]["mutation standard deviation"] == 0.0625


def test_decode_throughput(benchmark):
    decoder = DeepMDRepresentation.decoder()
    rng = np.random.default_rng(0)
    ranges = DeepMDRepresentation.init_ranges
    genomes = rng.uniform(
        ranges[:, 0], ranges[:, 1], size=(1000, len(GENE_NAMES))
    )

    def decode_all():
        return [decoder.decode(g) for g in genomes]

    phenomes = benchmark(decode_all)
    assert len(phenomes) == 1000
    assert all(
        p["scale_by_worker"] in ("linear", "sqrt", "none")
        for p in phenomes
    )
